//! UCRPQ translators into four concrete query syntaxes.
//!
//! Fig. 1 of the paper: the gMark query translator emits workloads as
//! SPARQL 1.1, openCypher, PostgreSQL SQL:1999, and Datalog. This crate
//! implements all four:
//!
//! * [`sparql`] — SPARQL 1.1 property paths (`/`, `|`, `*`, `^`), `SELECT
//!   DISTINCT` / `ASK`, `UNION` across rules;
//! * [`cypher`] — openCypher `MATCH` patterns. As Section 7.1 documents,
//!   openCypher cannot express inverses or concatenations under a Kleene
//!   star; the translator applies exactly the paper's degradation (keep the
//!   non-inverse symbol / the first symbol of a concatenation) and flags it
//!   in a comment;
//! * [`sql`] — SQL:1999 over an `edge(src, label, trg)` table, with one
//!   `WITH RECURSIVE` CTE per starred conjunct using the standard linear
//!   recursion, per the paper's footnote 4;
//! * [`datalog`] — positive Datalog rules over `edge_<label>/2` and
//!   `node/1` EDB predicates (also consumed by the in-repo Datalog engine).
//!
//! All translators are deterministic; generated text depends only on the
//! query and schema.

#![warn(missing_docs)]

pub mod cypher;
pub mod datalog;
pub mod sparql;
pub mod sql;
pub mod stream;

pub use stream::{
    stream_workload, write_workload, StreamSummary, WorkloadOutputs, WorkloadStreamError,
    WorkloadStreamOptions,
};

use gmark_core::query::Query;
use gmark_core::schema::Schema;

/// An error raised while translating one query. Translation of queries
/// validated by `Query::new` cannot fail; the variants exist so hand-built
/// rules propagate a clean error (tagged with the query index by the
/// workload pipeline) instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// A head variable that no body conjunct binds (SQL projection).
    UnboundHeadVar {
        /// The unbound variable's number.
        var: u32,
    },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::UnboundHeadVar { var } => {
                write!(f, "head variable ?x{var} is bound by no conjunct")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Which syntaxes to emit; `translate_all` produces each of the paper's
/// four output languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syntax {
    /// SPARQL 1.1.
    Sparql,
    /// openCypher.
    Cypher,
    /// PostgreSQL SQL:1999.
    Sql,
    /// Datalog.
    Datalog,
}

impl Syntax {
    /// All four syntaxes, in the paper's Fig. 1 order.
    pub const ALL: [Syntax; 4] = [Syntax::Sparql, Syntax::Cypher, Syntax::Sql, Syntax::Datalog];

    /// The line-comment leader of this syntax, used for the per-query
    /// headers in the streamed workload documents.
    pub fn comment_prefix(self) -> &'static str {
        match self {
            Syntax::Sparql => "#",
            Syntax::Cypher => "//",
            Syntax::Sql => "--",
            Syntax::Datalog => "%",
        }
    }
}

impl std::fmt::Display for Syntax {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Syntax::Sparql => "sparql",
            Syntax::Cypher => "cypher",
            Syntax::Sql => "sql",
            Syntax::Datalog => "datalog",
        };
        write!(f, "{s}")
    }
}

/// Translates a query into one syntax.
pub fn translate(query: &Query, schema: &Schema, syntax: Syntax) -> Result<String, TranslateError> {
    match syntax {
        Syntax::Sparql => Ok(sparql::translate(query, schema)),
        Syntax::Cypher => Ok(cypher::translate(query, schema)),
        Syntax::Sql => sql::translate(query, schema),
        Syntax::Datalog => Ok(datalog::translate(query, schema)),
    }
}

/// Translates a query into all four syntaxes.
pub fn translate_all(
    query: &Query,
    schema: &Schema,
) -> Result<Vec<(Syntax, String)>, TranslateError> {
    Syntax::ALL
        .iter()
        .map(|&s| Ok((s, translate(query, schema, s)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
    use gmark_core::schema::{Occurrence, PredicateId, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.predicate("c", None);
        b.build().unwrap()
    }

    fn example_query() -> Query {
        // (?x, ?y) <- (?x, (a·b + c)*, ?y)
        let a = Symbol::forward(PredicateId(0));
        let b = Symbol::forward(PredicateId(1));
        let c = Symbol::forward(PredicateId(2));
        Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::star(vec![PathExpr(vec![a, b]), PathExpr(vec![c])]),
                trg: Var(1),
            }],
        })
        .unwrap()
    }

    #[test]
    fn translate_all_produces_four_outputs() {
        let q = example_query();
        let s = schema();
        let all = translate_all(&q, &s).unwrap();
        assert_eq!(all.len(), 4);
        for (syntax, text) in all {
            assert!(!text.is_empty(), "{syntax} output empty");
        }
    }

    #[test]
    fn syntax_display_names() {
        assert_eq!(Syntax::Sparql.to_string(), "sparql");
        assert_eq!(Syntax::Datalog.to_string(), "datalog");
    }

    #[test]
    fn unbound_head_var_is_an_error_not_a_panic() {
        // Bypass Query::new's safety check to exercise the SQL error path.
        let q = Query {
            rules: vec![Rule {
                head: vec![Var(7)],
                body: vec![Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(Symbol::forward(PredicateId(0))),
                    trg: Var(1),
                }],
            }],
        };
        let err = translate(&q, &schema(), Syntax::Sql).unwrap_err();
        assert_eq!(err, TranslateError::UnboundHeadVar { var: 7 });
        assert!(err.to_string().contains("?x7"), "{err}");
    }
}
