//! UCRPQ translators into four concrete query syntaxes.
//!
//! Fig. 1 of the paper: the gMark query translator emits workloads as
//! SPARQL 1.1, openCypher, PostgreSQL SQL:1999, and Datalog. This crate
//! implements all four:
//!
//! * [`sparql`] — SPARQL 1.1 property paths (`/`, `|`, `*`, `^`), `SELECT
//!   DISTINCT` / `ASK`, `UNION` across rules;
//! * [`cypher`] — openCypher `MATCH` patterns. As Section 7.1 documents,
//!   openCypher cannot express inverses or concatenations under a Kleene
//!   star; the translator applies exactly the paper's degradation (keep the
//!   non-inverse symbol / the first symbol of a concatenation) and flags it
//!   in a comment;
//! * [`sql`] — SQL:1999 over an `edge(src, label, trg)` table, with one
//!   `WITH RECURSIVE` CTE per starred conjunct using the standard linear
//!   recursion, per the paper's footnote 4;
//! * [`datalog`] — positive Datalog rules over `edge_<label>/2` and
//!   `node/1` EDB predicates (also consumed by the in-repo Datalog engine).
//!
//! All translators are deterministic; generated text depends only on the
//! query and schema.

#![warn(missing_docs)]

pub mod cypher;
pub mod datalog;
pub mod sparql;
pub mod sql;

use gmark_core::query::Query;
use gmark_core::schema::Schema;

/// Which syntaxes to emit; `translate_all` produces each of the paper's
/// four output languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syntax {
    /// SPARQL 1.1.
    Sparql,
    /// openCypher.
    Cypher,
    /// PostgreSQL SQL:1999.
    Sql,
    /// Datalog.
    Datalog,
}

impl Syntax {
    /// All four syntaxes, in the paper's Fig. 1 order.
    pub const ALL: [Syntax; 4] = [Syntax::Sparql, Syntax::Cypher, Syntax::Sql, Syntax::Datalog];
}

impl std::fmt::Display for Syntax {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Syntax::Sparql => "sparql",
            Syntax::Cypher => "cypher",
            Syntax::Sql => "sql",
            Syntax::Datalog => "datalog",
        };
        write!(f, "{s}")
    }
}

/// Translates a query into one syntax.
pub fn translate(query: &Query, schema: &Schema, syntax: Syntax) -> String {
    match syntax {
        Syntax::Sparql => sparql::translate(query, schema),
        Syntax::Cypher => cypher::translate(query, schema),
        Syntax::Sql => sql::translate(query, schema),
        Syntax::Datalog => datalog::translate(query, schema),
    }
}

/// Translates a query into all four syntaxes.
pub fn translate_all(query: &Query, schema: &Schema) -> Vec<(Syntax, String)> {
    Syntax::ALL
        .iter()
        .map(|&s| (s, translate(query, schema, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
    use gmark_core::schema::{Occurrence, PredicateId, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.predicate("c", None);
        b.build().unwrap()
    }

    fn example_query() -> Query {
        // (?x, ?y) <- (?x, (a·b + c)*, ?y)
        let a = Symbol::forward(PredicateId(0));
        let b = Symbol::forward(PredicateId(1));
        let c = Symbol::forward(PredicateId(2));
        Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::star(vec![PathExpr(vec![a, b]), PathExpr(vec![c])]),
                trg: Var(1),
            }],
        })
        .unwrap()
    }

    #[test]
    fn translate_all_produces_four_outputs() {
        let q = example_query();
        let s = schema();
        let all = translate_all(&q, &s);
        assert_eq!(all.len(), 4);
        for (syntax, text) in all {
            assert!(!text.is_empty(), "{syntax} output empty");
        }
    }

    #[test]
    fn syntax_display_names() {
        assert_eq!(Syntax::Sparql.to_string(), "sparql");
        assert_eq!(Syntax::Datalog.to_string(), "datalog");
    }
}
