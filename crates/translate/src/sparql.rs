//! SPARQL 1.1 translation.
//!
//! UCRPQs map directly onto SPARQL 1.1 property paths (the paper notes that
//! "all regular path queries … appear as property paths in SPARQL 1.1"):
//! concatenation becomes `/`, disjunction `|`, Kleene star `*`, and the
//! inverse `a⁻` becomes `^p:a`. Rules of a union become `UNION` groups;
//! Boolean (arity-0) queries become `ASK`.

use gmark_core::query::{PathExpr, Query, RegularExpr, Rule, Symbol};
use gmark_core::schema::Schema;
use std::fmt::Write;

const PREFIX: &str = "http://gmark.example.org/pred/";

fn symbol(s: Symbol, schema: &Schema) -> String {
    let name = schema.predicate_name(s.predicate);
    if s.inverse {
        format!("^p:{name}")
    } else {
        format!("p:{name}")
    }
}

fn path(p: &PathExpr, schema: &Schema) -> String {
    if p.is_empty() {
        // ε: a zero-length path; SPARQL spells it as a zero-or-one of an
        // arbitrary predicate intersected with self — the conventional
        // encoding is `(p:x)?` limited to self, but the portable choice is
        // the empty-path idiom `^p:eps|p:eps`? None is standard; emit `()`
        // with a comment-free fallback: a zero-length path is `(p)?` only
        // for matching endpoints. gMark never emits bare ε disjuncts in
        // SPARQL output; guard anyway with an impossible self-loop test.
        return "(p:__epsilon__)?".to_owned();
    }
    p.0.iter()
        .map(|&s| symbol(s, schema))
        .collect::<Vec<_>>()
        .join("/")
}

fn expr(e: &RegularExpr, schema: &Schema) -> String {
    let alts: Vec<String> = e.disjuncts.iter().map(|p| path(p, schema)).collect();
    let body = alts.join("|");
    if e.starred {
        format!("(({body}))*")
    } else if e.disjuncts.len() > 1 {
        format!("({body})")
    } else {
        body
    }
}

fn rule_group(rule: &Rule, schema: &Schema) -> String {
    let mut out = String::new();
    for c in &rule.body {
        let _ = writeln!(
            out,
            "    ?x{} {} ?x{} .",
            c.src.0,
            expr(&c.expr, schema),
            c.trg.0
        );
    }
    out
}

/// Translates a UCRPQ into SPARQL 1.1.
pub fn translate(query: &Query, schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PREFIX p: <{PREFIX}>");
    let head = &query.rules[0].head;
    if head.is_empty() {
        let _ = writeln!(out, "ASK WHERE {{");
    } else {
        let vars: Vec<String> = head.iter().map(|v| format!("?x{}", v.0)).collect();
        let _ = writeln!(out, "SELECT DISTINCT {} WHERE {{", vars.join(" "));
    }
    if query.rules.len() == 1 {
        out.push_str(&rule_group(&query.rules[0], schema));
    } else {
        for (i, rule) in query.rules.iter().enumerate() {
            if i > 0 {
                let _ = writeln!(out, "  UNION");
            }
            let _ = writeln!(out, "  {{");
            out.push_str(&rule_group(rule, schema));
            let _ = writeln!(out, "  }}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// The count-distinct wrapper the paper uses for measurements
/// (Section 7.1 (ii): `count(distinct(?v))` over the output variables).
pub fn translate_count(query: &Query, schema: &Schema) -> String {
    let head = &query.rules[0].head;
    if head.is_empty() {
        return translate(query, schema);
    }
    let inner = translate(query, schema);
    // Re-head the SELECT line with an aggregate over the projected vars.
    let vars: Vec<String> = head.iter().map(|v| format!("?x{}", v.0)).collect();
    let select_line = format!("SELECT DISTINCT {} WHERE {{", vars.join(" "));
    let agg_line = format!(
        "SELECT (COUNT(*) AS ?cnt) WHERE {{ SELECT DISTINCT {} WHERE {{",
        vars.join(" ")
    );
    let replaced = inner.replacen(&select_line, &agg_line, 1);
    // Close the extra brace of the nested select.
    let mut out = replaced.trim_end().to_owned();
    out.push_str(" }\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, Var};
    use gmark_core::schema::{Occurrence, PredicateId, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.node_type("t", Occurrence::Proportion(1.0));
        b.predicate("a", None);
        b.predicate("b", None);
        b.predicate("c", None);
        b.build().unwrap()
    }

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    #[test]
    fn example_3_4_first_rule() {
        // (?x,?y,?z) <- (?x,(a·b+c)*,?y), (?y,a,?w), (?w,b⁻,?z)
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1), Var(3)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::star(vec![
                        PathExpr(vec![sym(0), sym(1)]),
                        PathExpr(vec![sym(2)]),
                    ]),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(1),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(2),
                },
                Conjunct {
                    src: Var(2),
                    expr: RegularExpr::symbol(sym(1).flipped()),
                    trg: Var(3),
                },
            ],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("SELECT DISTINCT ?x0 ?x1 ?x3 WHERE {"), "{s}");
        assert!(s.contains("?x0 ((p:a/p:b|p:c))* ?x1 ."), "{s}");
        assert!(s.contains("?x1 p:a ?x2 ."), "{s}");
        assert!(s.contains("?x2 ^p:b ?x3 ."), "{s}");
        assert!(s.starts_with("PREFIX p: <http://gmark.example.org/pred/>"));
    }

    #[test]
    fn boolean_query_is_ask() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("ASK WHERE {"), "{s}");
        assert!(!s.contains("SELECT"), "{s}");
    }

    #[test]
    fn union_of_rules() {
        let mk = |p: usize| Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(p)),
                trg: Var(1),
            }],
        };
        let q = Query::new(vec![mk(0), mk(1)]).unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("UNION"), "{s}");
        assert!(s.matches('{').count() >= 3, "{s}");
    }

    #[test]
    fn plain_disjunction_parenthesized() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::union(vec![
                    PathExpr(vec![sym(0)]),
                    PathExpr(vec![sym(1), sym(2)]),
                ]),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate(&q, &schema());
        assert!(s.contains("?x0 (p:a|p:b/p:c) ?x1 ."), "{s}");
    }

    #[test]
    fn count_wrapper_nests_distinct() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let s = translate_count(&q, &schema());
        assert!(s.contains("SELECT (COUNT(*) AS ?cnt)"), "{s}");
        assert!(s.contains("SELECT DISTINCT ?x0 ?x1"), "{s}");
        // Braces balance.
        assert_eq!(s.matches('{').count(), s.matches('}').count(), "{s}");
    }
}
