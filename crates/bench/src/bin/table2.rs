//! **Table 2** — selectivity estimation quality (Section 6.2).
//!
//! For each use case (LSN, Bib, WD, + the SP row) and each workload family
//! (Len, Dis, Con, Rec): generate 30 queries (10 per selectivity class),
//! evaluate each on instances of growing size, fit `|Q(G)| = β·|G|^α` by
//! log–log regression, and report the measured `α` mean±sd per class —
//! exactly the table's rows. Failed evaluations (budget exceeded, as the
//! paper saw for WD-Rec linear) are skipped; a class with no surviving
//! measurements prints `-`.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin table2 [--full] [--seed N]
//! ```

use gmark_bench::{build_graph, HarnessOptions, WorkloadKind};
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_engines::{Engine, TripleStoreEngine};
use gmark_stats::{log_log_alpha, Summary};

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.selectivity_sizes();
    println!(
        "Table 2: measured alpha per selectivity class (sizes {:?}{})",
        sizes,
        if opts.full { ", --full" } else { "" }
    );
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "", "Constant", "Linear", "Quadratic"
    );

    // The paper's row order: LSN, Bib, WD with all four families, then a
    // single SP row (its original-query encoding).
    let scenarios: Vec<(&str, gmark_core::schema::Schema, Vec<WorkloadKind>)> = vec![
        ("LSN", usecases::lsn(), WorkloadKind::ALL.to_vec()),
        ("Bib", usecases::bib(), WorkloadKind::ALL.to_vec()),
        ("WD", usecases::wd(), WorkloadKind::ALL.to_vec()),
        ("SP", usecases::sp(), vec![WorkloadKind::Con]),
    ];

    for (name, schema, kinds) in scenarios {
        // Pre-generate the graphs once per scenario.
        let graphs: Vec<(u64, gmark_store::Graph)> = sizes
            .iter()
            .map(|&n| (n, build_graph(&schema, n, opts.seed, opts.threads)))
            .collect();
        for kind in kinds {
            let workload = kind.workload(&schema, opts.seed ^ 0x7ab1e2);
            let mut per_class: std::collections::BTreeMap<SelectivityClass, Summary> =
                Default::default();
            for gq in &workload.queries {
                let Some(target) = gq.target else { continue };
                let mut observations = Vec::with_capacity(graphs.len());
                let mut failed = false;
                for (n, graph) in &graphs {
                    match TripleStoreEngine.evaluate(graph, &gq.query, &opts.budget()) {
                        Ok(answers) => observations.push((*n, answers.count())),
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                if failed || observations.len() < 2 {
                    continue;
                }
                if let Some((alpha, _beta)) = log_log_alpha(&observations) {
                    per_class.entry(target).or_default().push(alpha);
                }
            }
            let cell = |class: SelectivityClass| -> String {
                per_class
                    .get(&class)
                    .filter(|s| s.count() > 0)
                    .map(|s| s.paper_entry())
                    .unwrap_or_else(|| "-".to_owned())
            };
            let label = if kind == WorkloadKind::Con && name == "SP" {
                name.to_owned()
            } else {
                format!("{name}-{}", kind.name())
            };
            println!(
                "{:<10} {:>16} {:>16} {:>16}",
                label,
                cell(SelectivityClass::Constant),
                cell(SelectivityClass::Linear),
                cell(SelectivityClass::Quadratic),
            );
        }
    }
    println!(
        "\npaper reference (Table 2): constant ≈ 0.0–0.2, linear ≈ 0.9–1.5, \
         quadratic ≈ 1.4–2.05 depending on scenario; Bib quadratic is \
         sub-2 (1.4–1.6) in the paper as well."
    );
}
