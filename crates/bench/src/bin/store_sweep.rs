//! On-disk paged store baseline: build throughput and paged-vs-in-RAM
//! evaluation, exported as `BENCH_store.json` rows via `GMARK_BENCH_JSON`.
//!
//! Three modes, one process per invocation so each row's `peak_rss_kb`
//! (Linux `VmHWM`) is a per-mode peak — that per-process discipline is
//! what makes the paged-vs-in-RAM memory contrast meaningful:
//!
//! * `--mode build` — streams generation through the spool tee into
//!   `graph.gstore` (the CSR is never materialized) and records the store
//!   assembly throughput in MB/s;
//! * `--mode paged` — opens the store with [`StoreReader`] and runs the
//!   (engine × query) matrix twice in one process: a *cold* pass (page
//!   cache and relation cache empty) and a *warm* pass (both hot), one
//!   row each;
//! * `--mode inram` — regenerates the same `(config, seed)` graph as a
//!   materialized CSR and runs the matrix once, the RAM-resident
//!   contrast row.
//!
//! All three modes share one workload recipe and seed, so their cells/s
//! figures are directly comparable. `scripts/bench.sh` drives the trio at
//! 500K nodes.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin store_sweep -- \
//!     --mode build|paged|inram --store DIR \
//!     [--nodes N] [--threads T] [--queries Q] [--budget-ms MS] [--seed S]
//! ```

use gmark::run::{run, DirSink, RunOptions, RunPlan};
use gmark_bench::{append_bench_json, build_graph, peak_rss_kb, take_flag_value};
use gmark_core::query::Query;
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_core::workload::{generate_workload, Shape, Workload, WorkloadConfig};
use gmark_engines::{
    evaluate_matrix_with_schema, CellBudget, EngineKind, EvalContext, MatrixOptions,
};
use gmark_store::StoreReader;
use std::path::PathBuf;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Build,
    Paged,
    InRam,
}

struct Args {
    mode: Mode,
    store: PathBuf,
    nodes: u64,
    threads: usize,
    queries: usize,
    budget_ms: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: Mode::Build,
        store: PathBuf::from("target/store_sweep"),
        nodes: 500_000,
        threads: 1,
        queries: 12,
        budget_ms: 2_000,
        seed: 0x5704_E5EED,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--mode" => {
                args.mode = match take_flag_value(&argv, &mut i, &flag)?.as_str() {
                    "build" => Mode::Build,
                    "paged" => Mode::Paged,
                    "inram" => Mode::InRam,
                    other => return Err(format!("--mode: {other:?} (build|paged|inram)")),
                }
            }
            "--store" => args.store = PathBuf::from(take_flag_value(&argv, &mut i, &flag)?),
            "--nodes" => args.nodes = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--threads" => args.threads = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--queries" => args.queries = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--budget-ms" => {
                args.budget_ms = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--seed" => args.seed = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

/// The shared workload recipe: multi-conjunct, all four shapes, some
/// recursion — identical across the paged and in-RAM modes so the cells/s
/// rows compare like for like.
fn shared_workload(queries: usize, seed: u64) -> Workload {
    let schema = usecases::bib();
    let mut wcfg = WorkloadConfig::new(queries).with_seed(seed ^ 0xE7A1);
    wcfg.selectivities = SelectivityClass::ALL.to_vec();
    wcfg.shapes = Shape::ALL.to_vec();
    wcfg.recursion_probability = 0.3;
    wcfg.query_size.conjuncts = (2, 3);
    wcfg.query_size.disjuncts = (1, 2);
    let (workload, _) = generate_workload(&schema, &wcfg).expect("workload generates");
    workload
}

/// Runs one full matrix pass, appends a `BENCH_store.json` row, and
/// returns the pass's cells/s so the paged mode can assert its
/// warm-vs-cold ordering.
fn matrix_pass(ctx: &EvalContext<'_>, args: &Args, mode_label: &str) -> f64 {
    let workload = shared_workload(args.queries, args.seed);
    let queries: Vec<&Query> = workload.queries.iter().map(|gq| &gq.query).collect();
    let budget = CellBudget {
        timeout: (args.budget_ms > 0).then(|| Duration::from_millis(args.budget_ms)),
        max_tuples: 2_000_000,
    };
    let schema = usecases::bib();
    let started = Instant::now();
    let report = evaluate_matrix_with_schema(
        ctx,
        Some(&schema),
        &queries,
        &EngineKind::ALL,
        &budget,
        &MatrixOptions {
            threads: args.threads,
            ..MatrixOptions::default()
        },
    );
    let seconds = started.elapsed().as_secs_f64();
    let totals = report.totals();
    let cells_per_s = totals.cells as f64 / seconds.max(1e-9);
    println!(
        "store_sweep: {mode_label} bib n={} q={} threads={} -> {} cells in {seconds:.3}s \
         ({cells_per_s:.0} cells/s; {} ok, {} timeout, {} too-large)",
        args.nodes,
        args.queries,
        args.threads,
        totals.cells,
        totals.ok,
        totals.timeout,
        totals.too_large
    );
    let rss = peak_rss_kb()
        .map(|kb| kb.to_string())
        .unwrap_or_else(|| "null".to_owned());
    let row = format!(
        "{{\"bench\":\"store_sweep\",\"mode\":\"{mode_label}\",\"schema\":\"bib\",\
         \"nodes\":{},\"queries\":{},\"threads\":{},\"budget_ms\":{},\"cells\":{},\
         \"seconds\":{seconds:.6},\"cells_per_s\":{cells_per_s:.1},\"ok\":{},\
         \"timeout\":{},\"too_large\":{},\"peak_rss_kb\":{rss}}}",
        args.nodes,
        args.queries,
        args.threads,
        args.budget_ms,
        totals.cells,
        totals.ok,
        totals.timeout,
        totals.too_large,
    );
    if let Err(e) = append_bench_json(&row) {
        eprintln!("store_sweep: writing bench row: {e}");
    }
    cells_per_s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("store_sweep: {e}");
            std::process::exit(2);
        }
    };
    match args.mode {
        Mode::Build => {
            // Stream the generator through the spool tee straight into the
            // store — no N-Triples output, no materialized CSR.
            let mut plan = RunPlan::builder(usecases::bib())
                .nodes(args.nodes)
                .store()
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("store_sweep: {e}");
                    std::process::exit(2);
                });
            plan.outputs.graph = false;
            std::fs::create_dir_all(&args.store).expect("store directory creates");
            let mut sink = DirSink::new(&args.store).expect("store directory opens");
            let opts = RunOptions::with_seed(args.seed)
                .threads(args.threads)
                .stream(true);
            let started = Instant::now();
            let summary = run(&plan, &opts, &mut sink).unwrap_or_else(|e| {
                eprintln!("store_sweep: store build failed: {e}");
                std::process::exit(1);
            });
            let total_seconds = started.elapsed().as_secs_f64();
            let store = summary.store.expect("store plans record a store slice");
            // Throughput over the whole pipeline (generation + spool +
            // assembly): that is the wall cost a user pays for the file.
            let mb_per_s = store.bytes as f64 / 1e6 / total_seconds.max(1e-9);
            let rss = peak_rss_kb()
                .map(|kb| kb.to_string())
                .unwrap_or_else(|| "null".to_owned());
            println!(
                "store_sweep: build bib n={} threads={} -> {} edges, {} bytes in \
                 {total_seconds:.3}s ({mb_per_s:.1} MB/s, assembly {:.3}s)",
                args.nodes, args.threads, store.edges, store.bytes, store.seconds
            );
            let row = format!(
                "{{\"bench\":\"store_sweep\",\"mode\":\"build\",\"schema\":\"bib\",\
                 \"nodes\":{},\"threads\":{},\"edges\":{},\"bytes\":{},\
                 \"page_size\":{},\"assembly_seconds\":{:.6},\
                 \"seconds\":{total_seconds:.6},\"mb_per_s\":{mb_per_s:.1},\
                 \"peak_rss_kb\":{rss}}}",
                args.nodes, args.threads, store.edges, store.bytes, store.page_size, store.seconds,
            );
            if let Err(e) = append_bench_json(&row) {
                eprintln!("store_sweep: writing bench row: {e}");
            }
        }
        Mode::Paged => {
            let path = args.store.join("graph.gstore");
            let reader = StoreReader::open(&path).unwrap_or_else(|e| {
                eprintln!("store_sweep: {e} (run --mode build first)");
                std::process::exit(1);
            });
            // Cold: fresh page cache and relation cache. Warm: same
            // context, both caches hot. Same process, so the two rows
            // share one VmHWM peak.
            let ctx = EvalContext::new(&reader);
            let cold = matrix_pass(&ctx, &args, "paged_cold");
            let warm = matrix_pass(&ctx, &args, "paged_warm");
            // The warm pass reuses the cold pass's page cache, relation
            // cache, and expression cache — it must not be slower. A
            // regression here means the read path is doing warm-path work
            // per hit (the PR-7 pinned-page accounting bug); flag it
            // loudly rather than letting the rows drift apart silently.
            if warm < cold {
                eprintln!(
                    "store_sweep: WARNING: paged_warm ({warm:.1} cells/s) slower than \
                     paged_cold ({cold:.1} cells/s) — warm-path regression in the store \
                     read path"
                );
            }
        }
        Mode::InRam => {
            let schema = usecases::bib();
            let graph = build_graph(&schema, args.nodes, args.seed, args.threads);
            let ctx = EvalContext::new(&graph);
            matrix_pass(&ctx, &args, "inram");
        }
    }
}
