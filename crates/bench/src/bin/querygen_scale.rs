//! **Section 6.2, query-generation scalability** — "gMark easily generates
//! workloads of a thousand queries for Bib, LSN, and SP in around one
//! second and for the richer WD scenario in around 10 seconds. Query
//! translation of a thousand queries into all four supported syntaxes …
//! took a mere tenth of a second."
//!
//! Runs the parallel workload pipeline end to end per scenario: generation
//! via [`generate_workload_with_threads`] and translation via the unified
//! pipeline (`gmark::run::run` on a queries-only plan into a `NullSink` —
//! the same path the `gmark` CLI uses). When `GMARK_BENCH_JSON` is set, one row per
//! scenario is appended (the `scripts/bench.sh` protocol assembling
//! `BENCH_workload.json`):
//!
//! ```text
//! {"group":"querygen_scale","bench":"bib_1000q_t1","mean_ns":..,
//!  "throughput_kind":"elements","throughput_units":1000,
//!  "queries_per_s":..,"peak_rss_kb":..,"threads":1}
//! ```
//!
//! `bench.sh` invokes it once per thread count (1 vs auto), one process
//! per invocation so `peak_rss_kb` (VmHWM) is a per-run peak.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin querygen_scale \
//!     [--seed N] [--threads T]
//! ```

use gmark::run::{run, NullSink, RunOptions, RunPlan};
use gmark_bench::{append_bench_json, peak_rss_kb, HarnessOptions};
use gmark_core::usecases;
use gmark_core::workload::{generate_workload_with_threads, QuerySize, WorkloadConfig};
use std::time::Instant;

const QUERIES: usize = 1_000;

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "query workload generation + translation, {QUERIES} queries per scenario, \
         {} thread(s)",
        if opts.threads == 0 {
            "auto".to_owned()
        } else {
            opts.threads.to_string()
        }
    );
    println!(
        "{:<8} {:>16} {:>20} {:>12} {:>14}",
        "scenario", "generation", "translation (x4)", "queries/s", "bytes"
    );
    for (name, schema) in usecases::all() {
        let mut cfg = WorkloadConfig::new(QUERIES).with_seed(opts.seed);
        cfg.query_size = QuerySize {
            conjuncts: (1, 3),
            disjuncts: (1, 2),
            length: (1, 3),
        };
        cfg.recursion_probability = 0.2;

        let start = Instant::now();
        let (workload, report) = generate_workload_with_threads(&schema, &cfg, opts.threads)
            .unwrap_or_else(|e| {
                eprintln!("querygen_scale: {name}: {e}");
                std::process::exit(1);
            });
        let gen_time = start.elapsed();
        drop(workload);

        // Translation through the unified pipeline (generation included in
        // the wall time; the pipeline is one pass).
        let plan = RunPlan::builder(schema.clone())
            .workload(cfg.clone())
            .queries_only()
            .build()
            .unwrap_or_else(|e| {
                eprintln!("querygen_scale: {name}: {e}");
                std::process::exit(1);
            });
        let run_opts = RunOptions::default().threads(opts.threads);
        let start = Instant::now();
        let summary = run(&plan, &run_opts, &mut NullSink).unwrap_or_else(|e| {
            eprintln!("querygen_scale: {name}: {e}");
            std::process::exit(1);
        });
        let pipeline_time = start.elapsed();
        let translate_time = pipeline_time.saturating_sub(gen_time);
        let wsum = summary
            .workload
            .expect("queries-only plans run the workload");
        let bytes: u64 = wsum.bytes.iter().sum();
        let qps = QUERIES as f64 / pipeline_time.as_secs_f64().max(1e-9);

        println!(
            "{:<8} {:>14.3}s {:>18.3}s {:>12.0} {:>14}   (relaxations: {}, unmet targets: {}, \
             cypher degradations: {}+{})",
            name,
            gen_time.as_secs_f64(),
            translate_time.as_secs_f64(),
            qps,
            bytes,
            report.relaxations,
            report.unsatisfied_selectivity,
            report.cypher.star_concat,
            report.cypher.star_inverse,
        );

        // peak_rss_kb is omitted — not faked as 0 — where procfs is absent.
        let rss_field = peak_rss_kb().map_or(String::new(), |kb| format!(",\"peak_rss_kb\":{kb}"));
        let ns = pipeline_time.as_nanos();
        let row = format!(
            "{{\"group\":\"querygen_scale\",\"bench\":\"{name}_{QUERIES}q_t{t}\",\
             \"mean_ns\":{ns},\"min_ns\":{ns},\"iters\":1,\"throughput_kind\":\"elements\",\
             \"throughput_units\":{QUERIES},\"queries_per_s\":{qps:.0}{rss_field},\
             \"threads\":{t}}}",
            t = opts.threads,
        );
        if let Err(e) = append_bench_json(&row) {
            eprintln!("querygen_scale: exporting row: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "\npaper reference: ~1 s generation for Bib/LSN/SP, ~10 s for WD \
         (denser schema graph); translation of 1000 queries into all four \
         syntaxes ~0.1 s."
    );
}
