//! **Section 6.2, query-generation scalability** — "gMark easily generates
//! workloads of a thousand queries for Bib, LSN, and SP in around one
//! second and for the richer WD scenario in around 10 seconds. Query
//! translation of a thousand queries into all four supported syntaxes …
//! took a mere tenth of a second."
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin querygen_scale [--seed N]
//! ```

use gmark_bench::HarnessOptions;
use gmark_core::usecases;
use gmark_core::workload::{generate_workload, QuerySize, WorkloadConfig};
use gmark_translate::translate_all;
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("query workload generation + translation, 1000 queries per scenario");
    println!(
        "{:<8} {:>16} {:>20} {:>14}",
        "scenario", "generation", "translation (x4)", "texts"
    );
    for (name, schema) in usecases::all() {
        let mut cfg = WorkloadConfig::new(1_000).with_seed(opts.seed);
        cfg.query_size = QuerySize {
            conjuncts: (1, 3),
            disjuncts: (1, 2),
            length: (1, 3),
        };
        cfg.recursion_probability = 0.2;

        let start = Instant::now();
        let (workload, report) = generate_workload(&schema, &cfg);
        let gen_time = start.elapsed();

        let start = Instant::now();
        let mut texts = 0usize;
        for gq in &workload.queries {
            texts += translate_all(&gq.query, &schema).len();
        }
        let translate_time = start.elapsed();

        println!(
            "{:<8} {:>14.3}s {:>18.3}s {:>14}   (relaxations: {}, unmet targets: {})",
            name,
            gen_time.as_secs_f64(),
            translate_time.as_secs_f64(),
            texts,
            report.relaxations,
            report.unsatisfied_selectivity,
        );
    }
    println!(
        "\npaper reference: ~1 s generation for Bib/LSN/SP, ~10 s for WD \
         (denser schema graph); translation of 1000 queries into all four \
         syntaxes ~0.1 s."
    );
}
