//! **Fig. 12** — engine comparison on non-recursive workloads
//! (Section 7.2).
//!
//! Three panels — (a) constant, (b) linear, (c) quadratic queries — each a
//! grid of (workload family Len/Dis/Con × engine) × graph size, showing
//! the per-class average execution time under the Section 7.1 protocol
//! (cold run discarded; warm runs averaged after dropping extremes; the
//! two most deviant query averages per cell discarded, here approximated
//! by skipping failed queries).
//!
//! Runs on the shared evaluation harness: per (family, graph size), one
//! `EvalContext` and one `evaluate_matrix` call cover every
//! (query × engine) cell; panel averages are folded from the cells.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin fig12 [--full]
//! ```

use gmark_bench::{build_graph, HarnessOptions, WorkloadKind};
use gmark_core::query::Query;
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_engines::{evaluate_matrix, CellOutcome, EngineKind, EvalContext, EvalReport};
use gmark_stats::Summary;

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.engine_sizes();
    let schema = usecases::bib();
    let graphs: Vec<(u64, gmark_store::Graph)> = sizes
        .iter()
        .map(|&n| (n, build_graph(&schema, n, opts.seed, opts.threads)))
        .collect();
    // One shared context per graph size, reused by every workload family
    // — the per-graph indexes (relations, EDB) are built once, not once
    // per family.
    let contexts: Vec<EvalContext<'_>> = graphs
        .iter()
        .map(|(_, graph)| EvalContext::new(graph))
        .collect();

    // Evaluate every (family × size) matrix once, then print the three
    // class panels from the cached cells. Queries are laid out per family
    // as [class0 queries..., class1 queries..., class2 queries...] with
    // recorded (class, row range) offsets.
    struct FamilyRun {
        kind: WorkloadKind,
        /// Per class: the matrix row indices of its queries.
        class_rows: Vec<(SelectivityClass, Vec<usize>)>,
        /// One report per graph size.
        reports: Vec<EvalReport>,
    }

    let runs: Vec<FamilyRun> = WorkloadKind::NON_RECURSIVE
        .iter()
        .map(|&kind| {
            let workload = kind.workload(&schema, opts.seed ^ 0xF12);
            let mut queries: Vec<&Query> = Vec::new();
            let mut class_rows = Vec::new();
            for class in SelectivityClass::ALL {
                let start = queries.len();
                queries.extend(workload.of_class(class).map(|gq| &gq.query));
                class_rows.push((class, (start..queries.len()).collect()));
            }
            let reports = contexts
                .iter()
                .map(|ctx| {
                    evaluate_matrix(
                        ctx,
                        &queries,
                        &EngineKind::ALL,
                        &opts.cell_budget(),
                        &opts.matrix_options(),
                    )
                })
                .collect();
            FamilyRun {
                kind,
                class_rows,
                reports,
            }
        })
        .collect();

    println!("Fig. 12: average query time per (workload, engine) cell, Bib scenario");
    for class in SelectivityClass::ALL {
        println!("\n--- panel: {class} queries ---");
        let header: Vec<String> = sizes.iter().map(|n| format!("{}K", n / 1000)).collect();
        gmark_bench::print_row("workload/engine", &header, 12);
        for run in &runs {
            let rows = &run
                .class_rows
                .iter()
                .find(|(c, _)| *c == class)
                .expect("all classes recorded")
                .1;
            for kind in EngineKind::ALL {
                let mut cells = Vec::new();
                for report in &run.reports {
                    let mut summary = Summary::new();
                    let mut failures = 0;
                    for &row in rows.iter() {
                        let cell = report.cell(row, kind).expect("matrix covers every cell");
                        match &cell.outcome {
                            CellOutcome::Answers { .. } => summary.push(cell.seconds),
                            CellOutcome::Failed(_) => failures += 1,
                        }
                    }
                    if summary.count() == 0 {
                        cells.push("-".to_owned());
                    } else if failures > 0 {
                        cells.push(format!("{:.3}s*", summary.mean()));
                    } else {
                        cells.push(format!("{:.3}s", summary.mean()));
                    }
                }
                gmark_bench::print_row(&format!("{}/{}", run.kind.name(), kind.name()), &cells, 12);
            }
        }
    }
    println!(
        "\n('*' marks cells where some of the class's queries exceeded the \
         budget and were skipped.)\n\
         paper reference (Fig. 12): constant and linear times are the same \
         order of magnitude while quadratic queries typically run an order \
         of magnitude slower; P leads on constant and on small linear \
         instances, S overtakes on large linear and on quadratic workloads; \
         D blurs the linear/quadratic gap. Our engines are reimplementations \
         — per-engine winners may shift, the class-wise ordering and the \
         P-vs-S crossover shape are the reproduced claims."
    );
}
