//! **Fig. 12** — engine comparison on non-recursive workloads
//! (Section 7.2).
//!
//! Three panels — (a) constant, (b) linear, (c) quadratic queries — each a
//! grid of (workload family Len/Dis/Con × engine) × graph size, showing
//! the per-class average execution time under the Section 7.1 protocol
//! (cold run discarded; warm runs averaged after dropping extremes; the
//! two most deviant query averages per cell discarded, here approximated
//! by skipping failed queries).
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin fig12 [--full]
//! ```

use gmark_bench::{build_graph, measure, HarnessOptions, WorkloadKind};
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_engines::all_engines;
use gmark_stats::Summary;

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.engine_sizes();
    let schema = usecases::bib();
    let graphs: Vec<(u64, gmark_store::Graph)> = sizes
        .iter()
        .map(|&n| (n, build_graph(&schema, n, opts.seed, opts.threads)))
        .collect();

    println!("Fig. 12: average query time per (workload, engine) cell, Bib scenario");
    for class in SelectivityClass::ALL {
        println!("\n--- panel: {class} queries ---");
        let header: Vec<String> = sizes.iter().map(|n| format!("{}K", n / 1000)).collect();
        gmark_bench::print_row("workload/engine", &header, 12);
        for kind in WorkloadKind::NON_RECURSIVE {
            let workload = kind.workload(&schema, opts.seed ^ 0xF12);
            for engine in all_engines() {
                let mut cells = Vec::new();
                for (_, graph) in &graphs {
                    let mut summary = Summary::new();
                    let mut failures = 0;
                    for gq in workload.of_class(class) {
                        match measure(
                            engine.as_ref(),
                            graph,
                            &gq.query,
                            &opts.budget(),
                            opts.warm_runs(),
                        ) {
                            Ok((d, _)) => summary.push(d.as_secs_f64()),
                            Err(_) => failures += 1,
                        }
                    }
                    if summary.count() == 0 {
                        cells.push("-".to_owned());
                    } else if failures > 0 {
                        cells.push(format!("{:.3}s*", summary.mean()));
                    } else {
                        cells.push(format!("{:.3}s", summary.mean()));
                    }
                }
                gmark_bench::print_row(&format!("{}/{}", kind.name(), engine.name()), &cells, 12);
            }
        }
    }
    println!(
        "\n('*' marks cells where some of the class's queries exceeded the \
         budget and were skipped.)\n\
         paper reference (Fig. 12): constant and linear times are the same \
         order of magnitude while quadratic queries typically run an order \
         of magnitude slower; P leads on constant and on small linear \
         instances, S overtakes on large linear and on quadratic workloads; \
         D blurs the linear/quadratic gap. Our engines are reimplementations \
         — per-engine winners may shift, the class-wise ordering and the \
         P-vs-S crossover shape are the reproduced claims."
    );
}
