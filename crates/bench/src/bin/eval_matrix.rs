//! Evaluation-matrix throughput baseline: drives the full
//! generate → evaluate loop (Section 7 in miniature) through the shared
//! [`EvalContext`] + [`evaluate_matrix_with_schema`] harness and emits one
//! `BENCH_eval.json` row per invocation — cells/s, outcome counts, and
//! the process's peak RSS — via the `GMARK_BENCH_JSON` protocol.
//!
//! `scripts/bench.sh` runs one process per thread count (1 vs
//! auto-detect) so the `peak_rss_kb` figures are per-run peaks and the
//! 1-vs-auto pair pins the parallel evaluation pipeline's trajectory
//! across PRs.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin eval_matrix -- \
//!     [--nodes N] [--queries Q] [--threads T] [--budget-ms MS] \
//!     [--max-tuples N] [--seed S] [--no-plan] [--no-eval-cache]
//! ```
//!
//! `--no-plan` disables the schema-statistics query planner, so
//! `bench.sh` can record a planner-on vs planner-off pair per thread
//! count; each JSON row carries a `"plan"` field naming its regime.
//! `--no-eval-cache` likewise disables the cross-cell sub-expression
//! result cache, and each row carries a `"cache"` field plus the cache's
//! fill/hit/miss/rejected counters (zeros when disabled), so the cached
//! vs uncached row pair pins the cache's contribution across PRs.
//! `cache_hit_rate` counts the pre-clock fill builds in its denominator
//! (`hits / (hits + misses + fills)`): probes alone would report a
//! meaningless 100% whenever every useful entry was built during fill.

use gmark_bench::{append_bench_json, build_graph, peak_rss_kb, take_flag_value};
use gmark_core::query::Query;
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_core::workload::{generate_workload, Shape, WorkloadConfig};
use gmark_engines::{
    evaluate_matrix_with_schema, CellBudget, EngineKind, EvalContext, MatrixOptions,
};
use std::time::{Duration, Instant};

struct Args {
    nodes: u64,
    queries: usize,
    threads: usize,
    budget_ms: u64,
    max_tuples: usize,
    seed: u64,
    plan: bool,
    cache: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 2_000,
        queries: 30,
        threads: 1,
        budget_ms: 2_000,
        max_tuples: 2_000_000,
        seed: 0x9A9E_2017,
        plan: true,
        cache: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--nodes" => args.nodes = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--queries" => args.queries = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--threads" => args.threads = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--budget-ms" => {
                args.budget_ms = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--max-tuples" => {
                args.max_tuples = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--seed" => args.seed = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--no-plan" => args.plan = false,
            "--no-eval-cache" => args.cache = false,
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("eval_matrix: {e}");
            std::process::exit(2);
        }
    };

    let schema = usecases::bib();
    let graph = build_graph(&schema, args.nodes, args.seed, args.threads);

    // A mixed multi-conjunct workload (recursion included) so the budget
    // actually bites on the closure-heavy cells — the timeout/too-large
    // counters below are part of the recorded baseline, like the paper's
    // "-" cells. At least two conjuncts per query and all four body
    // shapes (chains leave join order forced by connectivity; stars,
    // cycles, and star-chains give the planner real ordering freedom)
    // keep join *order* in play, which is what the planner-on vs
    // --no-plan row pair measures.
    let mut wcfg = WorkloadConfig::new(args.queries).with_seed(args.seed ^ 0xE7A1);
    wcfg.selectivities = SelectivityClass::ALL.to_vec();
    wcfg.shapes = Shape::ALL.to_vec();
    wcfg.recursion_probability = 0.4;
    wcfg.query_size.conjuncts = (2, 4);
    wcfg.query_size.disjuncts = (1, 2);
    let (workload, _) = generate_workload(&schema, &wcfg).expect("workload generates");
    let queries: Vec<&Query> = workload.queries.iter().map(|gq| &gq.query).collect();

    let budget = CellBudget {
        timeout: (args.budget_ms > 0).then(|| Duration::from_millis(args.budget_ms)),
        max_tuples: args.max_tuples,
    };
    let ctx = EvalContext::new(&graph);
    let started = Instant::now();
    let report = evaluate_matrix_with_schema(
        &ctx,
        Some(&schema),
        &queries,
        &EngineKind::ALL,
        &budget,
        &MatrixOptions {
            threads: args.threads,
            plan: args.plan,
            cache_mb: if args.cache {
                MatrixOptions::DEFAULT_CACHE_MB
            } else {
                0
            },
            ..MatrixOptions::default()
        },
    );
    let seconds = started.elapsed().as_secs_f64();
    let totals = report.totals();
    let cells_per_s = totals.cells as f64 / seconds.max(1e-9);

    // The cache's counters ride along in the row: a hit-rate collapse in
    // a future PR shows up in BENCH_eval.json even if cells/s masks it.
    // The rate's denominator includes the pre-clock fill builds: probes
    // alone would read 100% on a fully pre-filled run, because every
    // build the cells benefit from happened before the first probe.
    let (hits, misses, rejected, fills) = report
        .cache
        .as_ref()
        .map(|c| (c.hits, c.misses, c.rejected, c.fills))
        .unwrap_or((0, 0, 0, 0));
    let hit_rate = if hits + misses + fills > 0 {
        hits as f64 / (hits + misses + fills) as f64
    } else {
        0.0
    };

    println!(
        "eval_matrix: bib n={} q={} engines=PGSD threads={} plan={} cache={} -> {} cells in \
         {seconds:.3}s ({cells_per_s:.0} cells/s; {} ok, {} timeout, {} too-large; \
         {fills} fills, {hits} hits / {misses} misses, {rejected} rejected)",
        args.nodes,
        args.queries,
        args.threads,
        if args.plan { "on" } else { "off" },
        if args.cache { "on" } else { "off" },
        totals.cells,
        totals.ok,
        totals.timeout,
        totals.too_large
    );

    let rss = peak_rss_kb()
        .map(|kb| kb.to_string())
        .unwrap_or_else(|| "null".to_owned());
    let row = format!(
        "{{\"bench\":\"eval_matrix\",\"scenario\":\"bib\",\"nodes\":{},\"queries\":{},\
         \"engines\":\"PGSD\",\"threads\":{},\"budget_ms\":{},\"max_tuples\":{},\
         \"plan\":{},\"cache\":{},\"cache_fills\":{fills},\"cache_hits\":{hits},\
         \"cache_misses\":{misses},\"cache_rejected\":{rejected},\
         \"cache_hit_rate\":{hit_rate:.3},\"cells\":{},\
         \"seconds\":{seconds:.6},\"cells_per_s\":{cells_per_s:.1},\"ok\":{},\
         \"timeout\":{},\"too_large\":{},\"peak_rss_kb\":{rss}}}",
        args.nodes,
        args.queries,
        args.threads,
        args.budget_ms,
        args.max_tuples,
        args.plan,
        args.cache,
        totals.cells,
        totals.ok,
        totals.timeout,
        totals.too_large,
    );
    if let Err(e) = append_bench_json(&row) {
        eprintln!("eval_matrix: writing bench row: {e}");
    }
}
