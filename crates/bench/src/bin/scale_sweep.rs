//! Table 3-style scale sweep pinning the memory-bounded streaming claim.
//!
//! Generates one graph size per invocation (so Linux `VmHWM` is a
//! per-size peak, not a cumulative one across sizes) and emits a
//! `BENCH_gen.json` row recording wall time, edge throughput, and peak
//! RSS:
//!
//! ```text
//! {"group":"scale_sweep","bench":"bib_5000000_streamed_t0", ...,
//!  "throughput_units":<edges>,"peak_rss_kb":<VmHWM>}
//! ```
//!
//! `--mode streamed` runs the memory-bounded pipeline
//! (`gmark::run::run` with `RunOptions::stream` into a `NullSink`:
//! per-constraint shard files, graph never materialized — peak memory is
//! the largest single constraint's slot vectors); `--mode materialized`
//! runs `gmark::run::run_in_memory` and serializes nothing, as the RSS
//! contrast row.
//! `scripts/bench.sh` sweeps node counts 50K → 5M streamed plus
//! materialized contrast rows.
//!
//! Usage: `scale_sweep [--nodes N] [--threads T] [--schema bib|lsn|sp|wd]
//! [--mode streamed|materialized]` (exports a row when `GMARK_BENCH_JSON`
//! is set).

use gmark::run::{run, run_in_memory, NullSink, RunOptions, RunPlan};
use gmark_bench::{append_bench_json, fmt_minutes, peak_rss_kb, take_flag_value};
use gmark_core::schema::Schema;
use gmark_core::usecases;
use std::time::Instant;

struct SweepArgs {
    nodes: u64,
    threads: usize,
    schema: String,
    streamed: bool,
    seed: u64,
}

fn parse_args() -> Result<SweepArgs, String> {
    let mut out = SweepArgs {
        nodes: 50_000,
        threads: 0,
        schema: "bib".to_owned(),
        streamed: true,
        seed: 0x5CA1_E5EED,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            take_flag_value(&argv, i, flag)
        };
        let flag = argv[i].clone();
        match flag.as_str() {
            "--nodes" => {
                let v = value(&mut i, &flag)?;
                out.nodes = v.parse().map_err(|_| format!("--nodes: bad count {v:?}"))?;
            }
            "--threads" => {
                let v = value(&mut i, &flag)?;
                out.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: bad count {v:?} (0 = auto)"))?;
            }
            "--schema" => out.schema = value(&mut i, &flag)?.to_lowercase(),
            "--seed" => {
                let v = value(&mut i, &flag)?;
                out.seed = v.parse().map_err(|_| format!("--seed: bad seed {v:?}"))?;
            }
            "--mode" => {
                out.streamed = match value(&mut i, &flag)?.as_str() {
                    "streamed" => true,
                    "materialized" => false,
                    other => return Err(format!("--mode: {other:?} (streamed|materialized)")),
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(out)
}

fn schema_by_name(name: &str) -> Option<Schema> {
    match name {
        "bib" => Some(usecases::bib()),
        "lsn" => Some(usecases::lsn()),
        "sp" => Some(usecases::sp()),
        "wd" => Some(usecases::wd()),
        _ => None,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scale_sweep: {e}");
            std::process::exit(2);
        }
    };
    let schema = match schema_by_name(&args.schema) {
        Some(s) => s,
        None => {
            eprintln!(
                "scale_sweep: unknown schema {:?} (bib|lsn|sp|wd)",
                args.schema
            );
            std::process::exit(2);
        }
    };
    let plan = RunPlan::builder(schema)
        .nodes(args.nodes)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("scale_sweep: {e}");
            std::process::exit(2);
        });
    let opts = RunOptions::with_seed(args.seed).threads(args.threads);
    let mode = if args.streamed {
        "streamed"
    } else {
        "materialized"
    };

    let start = Instant::now();
    // Both branches count report.total_edges — raw generated edges before
    // dedup — so streamed and materialized rows share one throughput unit.
    let edges = if args.streamed {
        // Shard files hit disk; the concatenated stream goes to the null
        // sink — the sweep measures generation + serialization, not the
        // final copy's target device.
        let summary = run(&plan, &opts.clone().stream(true), &mut NullSink).unwrap_or_else(|e| {
            eprintln!("scale_sweep: streaming failed: {e}");
            std::process::exit(1);
        });
        summary.graph.expect("graph ran").edges_generated
    } else {
        let arts = run_in_memory(&plan, &opts).unwrap_or_else(|e| {
            eprintln!("scale_sweep: generation failed: {e}");
            std::process::exit(1);
        });
        std::hint::black_box(arts.graph.expect("graph ran").edge_count());
        arts.summary.graph.expect("graph ran").edges_generated
    };
    let elapsed = start.elapsed();
    let rss_kb = peak_rss_kb();

    let ns = elapsed.as_nanos();
    let eps = edges as f64 / elapsed.as_secs_f64().max(1e-9);
    let rss_human = rss_kb.map_or("unavailable".to_owned(), |kb| {
        format!("{:.1} MiB", kb as f64 / 1024.0)
    });
    println!(
        "scale_sweep: {schema}_{nodes} {mode} threads={threads} -> {edges} edges in {time} \
         ({eps:.0} edges/s, peak RSS {rss_human})",
        schema = args.schema,
        nodes = args.nodes,
        threads = args.threads,
        time = fmt_minutes(elapsed),
    );
    // peak_rss_kb is omitted — not faked as 0 — where procfs is absent.
    let rss_field = rss_kb.map_or(String::new(), |kb| format!(",\"peak_rss_kb\":{kb}"));
    let row = format!(
        "{{\"group\":\"scale_sweep\",\"bench\":\"{schema}_{nodes}_{mode}_t{threads}\",\
         \"mean_ns\":{ns},\"min_ns\":{ns},\"iters\":1,\"throughput_kind\":\"elements\",\
         \"throughput_units\":{edges}{rss_field}}}",
        schema = args.schema,
        nodes = args.nodes,
        threads = args.threads,
    );
    if let Err(e) = append_bench_json(&row) {
        eprintln!("scale_sweep: exporting row: {e}");
        std::process::exit(1);
    }
}
