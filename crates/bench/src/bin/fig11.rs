//! **Fig. 11** — estimated vs theoretical selectivities on Bib
//! (Section 6.2).
//!
//! For each workload family (Len, Con, Dis, Rec — the figure's four
//! panels) the paper plots, for one query per class (Q1 constant, Q2
//! linear, Q3 quadratic), the measured result counts `|E|` against the
//! theoretical curve `|Q| = β·n^α` over graph sizes 2K–32K, showing the
//! two closely overlap. This binary prints both series side by side plus
//! the relative error, per panel.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin fig11 [--full]
//! ```

use gmark_bench::{build_graph, HarnessOptions, WorkloadKind};
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_engines::{evaluate_matrix, CellOutcome, EngineKind, EvalContext, MatrixOptions};
use gmark_stats::log_log_alpha;

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.selectivity_sizes();
    let schema = usecases::bib();
    let graphs: Vec<(u64, gmark_store::Graph)> = sizes
        .iter()
        .map(|&n| (n, build_graph(&schema, n, opts.seed, opts.threads)))
        .collect();
    // One shared context per graph size, reused across all four panels —
    // this experiment only needs counts, so no warm runs.
    let contexts: Vec<EvalContext<'_>> = graphs
        .iter()
        .map(|(_, graph)| EvalContext::new(graph))
        .collect();
    let matrix_opts = MatrixOptions {
        threads: opts.threads,
        warm_runs: 0,
        ..MatrixOptions::default()
    };

    println!("Fig. 11: measured |E| vs fitted theoretical |Q| = beta*n^alpha (Bib)");
    for kind in [
        WorkloadKind::Len,
        WorkloadKind::Con,
        WorkloadKind::Dis,
        WorkloadKind::Rec,
    ] {
        println!("\n--- panel Bib-{} ---", kind.name());
        let workload = kind.workload(&schema, opts.seed ^ 0xF16);
        for (qi, class) in SelectivityClass::ALL.iter().enumerate() {
            let Some(gq) = workload.of_class(*class).next() else {
                println!("Q{} ({class}): no query generated", qi + 1);
                continue;
            };
            let mut observations: Vec<(u64, u64)> = Vec::new();
            let mut failed = false;
            for ((n, _), ctx) in graphs.iter().zip(&contexts) {
                let report = evaluate_matrix(
                    ctx,
                    &[&gq.query],
                    &[EngineKind::TripleStore],
                    &opts.cell_budget(),
                    &matrix_opts,
                );
                match &report.cells[0].outcome {
                    CellOutcome::Answers { count, .. } => observations.push((*n, *count)),
                    CellOutcome::Failed(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed || observations.len() < 2 {
                println!(
                    "Q{} ({class}): evaluation exceeded budget (the paper hit \
                     the same wall on recursive workloads)",
                    qi + 1
                );
                continue;
            }
            let (alpha, beta) = log_log_alpha(&observations).expect("≥2 points");
            print!("Q{} ({class}) alpha={alpha:.2}:", qi + 1);
            let mut max_rel_err: f64 = 0.0;
            for &(n, measured) in &observations {
                let theoretical = beta * (n as f64).powf(alpha);
                let rel = if theoretical > 0.0 {
                    (measured as f64 - theoretical).abs() / theoretical.max(1.0)
                } else {
                    0.0
                };
                max_rel_err = max_rel_err.max(rel);
                print!("  {n}:|E|={measured}/|Q|={theoretical:.0}");
            }
            println!(
                "  (max rel. deviation from fit: {:.0}%)",
                max_rel_err * 100.0
            );
        }
    }
    println!(
        "\npaper reference (Fig. 11): the |E| and |Q| curves 'closely \
         overlap in all the cases'; quadratic counts dominate, linear grows \
         ~n, constant stays flat. The reproduced claim is the per-class \
         ordering and the tightness of the power-law fit."
    );
}
