//! **Table 3** — graph generation scalability (Section 6.2).
//!
//! Wall-clock time to generate instances of 100K–100M nodes for the four
//! schemas Bib, LSN, WD, SP. As in the paper, generation is measured as
//! pure edge production (streamed to a counting sink — the paper's
//! generator writes a file; neither retains the graph in RAM), and WD is
//! expected to dominate through sheer edge volume.
//!
//! Default sweep stops at 10M nodes (DESIGN.md §4: hardware substitution);
//! pass `--full` for the paper's 100M column. With `--threads N` the run
//! exercises the parallel pipeline instead: constraints are generated and
//! the per-predicate CSRs finalized on `N` worker threads (the graph is
//! materialized in memory rather than streamed, so edge throughput also
//! covers storage construction).
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin table3 [--full] [--threads N]
//! ```

use gmark_bench::{fmt_minutes, HarnessOptions};
use gmark_core::gen::{generate_graph, generate_into, GeneratorOptions};
use gmark_core::schema::GraphConfig;
use gmark_core::usecases;
use gmark_store::CountingSink;
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.scalability_sizes();
    let header: Vec<String> = sizes
        .iter()
        .map(|&n| {
            if n >= 1_000_000 {
                format!("{}M", n / 1_000_000)
            } else {
                format!("{}K", n / 1_000)
            }
        })
        .collect();
    if opts.threads > 1 {
        println!(
            "Table 3: graph generation time (materialized, {} threads; node counts are requested sizes)",
            opts.threads
        );
    } else {
        println!("Table 3: graph generation time (streamed; node counts are requested sizes)");
    }
    gmark_bench::print_row("", &header, 14);

    for (name, schema) in usecases::all() {
        let mut cells = Vec::with_capacity(sizes.len());
        for &n in &sizes {
            let config = GraphConfig::new(n, schema.clone());
            let gen_opts = GeneratorOptions {
                threads: opts.threads,
                ..GeneratorOptions::with_seed(opts.seed)
            };
            let start = Instant::now();
            let total_edges = if opts.threads > 1 {
                generate_graph(&config, &gen_opts).1.total_edges
            } else {
                let mut sink = CountingSink::new(schema.predicate_count());
                generate_into(&config, &gen_opts, &mut sink).total_edges
            };
            let elapsed = start.elapsed();
            cells.push(format!(
                "{} ({:.1}M e)",
                fmt_minutes(elapsed),
                total_edges as f64 / 1e6
            ));
        }
        gmark_bench::print_row(name, &cells, 22);
    }
    println!(
        "\npaper reference (Table 3, authors' 2009-era testbed): Bib 100K \
         0m0.057s → 100M 1m28.7s; WD two orders of magnitude slower than \
         Bib at equal node counts (much denser instances). Expect the same \
         linear scaling shape and the same Bib < LSN < SP < WD ordering."
    );
}
