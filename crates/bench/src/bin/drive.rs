//! `gmark bench drive` — closed/open-loop traffic driver with latency
//! percentiles, the load-generation side of the serving scoreboard.
//!
//! Fires a deterministic Zipf-skewed request sequence
//! ([`gmark_bench::driver`]) at one of two targets:
//!
//! * **`--target inprocess`** — per-request engine evaluation against an
//!   in-memory bib graph (no sockets): the ceiling the serving path is
//!   measured against;
//! * **`--target served`** — a real `gmark serve` endpoint over TCP,
//!   either an internal server started by this process or, with
//!   `--addr`, an external one (how the CI smoke drives a daemon it
//!   started itself). `--transport keepalive` reuses one connection per
//!   worker (reconnecting when the server says `Connection: close`);
//!   `--transport close` opens a fresh connection per request — the
//!   pre-keep-alive behavior, kept as the contrast row.
//!
//! Emits one `BENCH_drive.json` row per invocation via the
//! `GMARK_BENCH_JSON` protocol: sustained QPS and p50/p95/p99/max/mean
//! latency of the measured phase, after an untimed warmup.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin drive -- \
//!     --target served --transport keepalive \
//!     [--requests R] [--warmup W] [--max-concurrency C] \
//!     [--zipf-exponent S] [--distinct K] [--rate QPS] [--seed N] \
//!     [--nodes N] [--workers W] [--cache-mb M] [--engine P|G|S|D] \
//!     [--addr HOST:PORT]
//! ```

use gmark::serve::http::{fetch, Client};
use gmark::serve::{ServeConfig, Server};
use gmark_bench::driver::{drive, DriveReport, DriverConfig};
use gmark_bench::{append_bench_json, build_graph, peak_rss_kb, take_flag_value, WorkloadKind};
use gmark_engines::{Budget, EngineKind, EvalContext};
use std::net::{SocketAddr, ToSocketAddrs};

const BIB_XML: &str = include_str!("../../../../examples/configs/bib.xml");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Inprocess,
    Served,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    KeepAlive,
    Close,
}

struct Args {
    target: Target,
    transport: Transport,
    driver: DriverConfig,
    nodes: u64,
    workers: usize,
    cache_mb: usize,
    engine: EngineKind,
    addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: Target::Served,
        transport: Transport::KeepAlive,
        driver: DriverConfig {
            requests: 400,
            warmup: 40,
            max_concurrency: 4,
            distinct: 8,
            zipf_exponent: 1.0,
            seed: 0xD21_7E57,
            rate: 0.0,
        },
        nodes: 300,
        workers: 2,
        cache_mb: 128,
        engine: EngineKind::TripleStore,
        addr: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--target" => {
                args.target = match take_flag_value(&argv, &mut i, &flag)?.as_str() {
                    "inprocess" => Target::Inprocess,
                    "served" => Target::Served,
                    other => {
                        return Err(format!(
                            "--target: expected inprocess|served, got {other:?}"
                        ))
                    }
                }
            }
            "--transport" => {
                args.transport = match take_flag_value(&argv, &mut i, &flag)?.as_str() {
                    "keepalive" => Transport::KeepAlive,
                    "close" => Transport::Close,
                    other => {
                        return Err(format!(
                            "--transport: expected keepalive|close, got {other:?}"
                        ))
                    }
                }
            }
            "--requests" => {
                args.driver.requests = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--warmup" => {
                args.driver.warmup = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--max-concurrency" => {
                args.driver.max_concurrency = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--zipf-exponent" => {
                args.driver.zipf_exponent = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--distinct" => {
                args.driver.distinct = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?
            }
            "--rate" => args.driver.rate = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--seed" => args.driver.seed = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--nodes" => args.nodes = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--workers" => args.workers = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--cache-mb" => args.cache_mb = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--engine" => {
                let v = take_flag_value(&argv, &mut i, &flag)?;
                let mut chars = v.chars();
                let (Some(letter), None) = (chars.next(), chars.next()) else {
                    return Err(format!("--engine: expected one letter P|G|S|D, got {v:?}"));
                };
                args.engine = EngineKind::from_letter(letter)
                    .ok_or_else(|| format!("--engine: unknown engine letter {letter:?}"))?;
            }
            "--addr" => args.addr = Some(take_flag_value(&argv, &mut i, &flag)?),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if args.driver.requests == 0 {
        return Err("--requests must be positive".to_owned());
    }
    if args.driver.distinct == 0 {
        return Err("--distinct must be positive".to_owned());
    }
    if !args.driver.zipf_exponent.is_finite() || args.driver.zipf_exponent < 0.0 {
        return Err("--zipf-exponent must be >= 0 (0 means uniform)".to_owned());
    }
    if !args.driver.rate.is_finite() || args.driver.rate < 0.0 {
        return Err("--rate must be >= 0 (0 means closed loop)".to_owned());
    }
    if args.addr.is_some() && args.target != Target::Served {
        return Err("--addr only applies to --target served".to_owned());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

/// The request every served-mode worker fires for popularity index
/// `idx`: one of `distinct` small plans, distinguished by seed, with the
/// compact summary artifact so the measurement is transport-dominated.
fn run_path(nodes: u64, base_seed: u64, idx: usize) -> String {
    format!(
        "/v1/run?nodes={nodes}&seed={}&artifact=summary.json",
        base_seed + idx as u64
    )
}

/// Drives per-request engine evaluation with no transport in the way.
fn drive_inprocess(args: &Args) -> DriveReport {
    let bib = gmark_core::usecases::bib();
    let graph = build_graph(&bib, args.nodes, args.driver.seed, 1);
    let workload = WorkloadKind::Len.workload(&bib, args.driver.seed);
    let queries: Vec<_> = workload.queries.iter().map(|gq| &gq.query).collect();
    let ctx = EvalContext::new(&graph);
    let budget = Budget::default();

    let mut cfg = args.driver.clone();
    cfg.distinct = cfg.distinct.min(queries.len()).max(1);
    let engine = args.engine;
    drive(&cfg, |_worker| {
        let ctx = &ctx;
        let queries = &queries;
        let budget = &budget;
        move |idx: usize| {
            engine
                .evaluate(ctx, queries[idx], budget)
                .map(|_| ())
                .map_err(|e| format!("{e:?}"))
        }
    })
}

/// Drives a live serve endpoint; starts an internal server unless
/// `--addr` points at an external one.
fn drive_served(args: &Args) -> Result<DriveReport, String> {
    let internal = if args.addr.is_some() {
        None
    } else {
        Some(
            Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                workers: args.workers,
                cache_mb: args.cache_mb,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("starting internal server: {e}"))?,
        )
    };
    let addr: SocketAddr = match (&internal, &args.addr) {
        (Some(server), _) => server.local_addr(),
        (None, Some(spec)) => spec
            .to_socket_addrs()
            .map_err(|e| format!("--addr {spec:?}: {e}"))?
            .next()
            .ok_or_else(|| format!("--addr {spec:?} resolves to nothing"))?,
        (None, None) => unreachable!("parse_args guarantees a server or an addr"),
    };

    let nodes = args.nodes;
    let base_seed = args.driver.seed;
    let distinct = args.driver.distinct;

    // Pre-touch every distinct plan once, serially: the snapshot builds
    // happen here, so the measured phase compares transports over cache
    // hits instead of racing cold builds.
    for idx in 0..distinct {
        let resp = fetch(
            addr,
            "POST",
            &run_path(nodes, base_seed, idx),
            BIB_XML.as_bytes(),
        )
        .map_err(|e| format!("pre-touch request failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "pre-touch of plan {idx} answered {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            ));
        }
    }

    let transport = args.transport;
    let report = drive(&args.driver, |_worker| {
        let mut client: Option<Client> = None;
        move |idx: usize| -> Result<(), String> {
            let path = run_path(nodes, base_seed, idx);
            match transport {
                Transport::Close => {
                    let resp = fetch(addr, "POST", &path, BIB_XML.as_bytes())
                        .map_err(|e| e.to_string())?;
                    if resp.status == 200 {
                        Ok(())
                    } else {
                        Err(format!("status {}", resp.status))
                    }
                }
                Transport::KeepAlive => {
                    // One reconnect attempt: the server is allowed to
                    // close a kept-alive connection between requests
                    // (idle window, per-connection cap, queue pressure).
                    for attempt in 0..2 {
                        if client.is_none() {
                            client = Some(Client::connect(addr).map_err(|e| e.to_string())?);
                        }
                        let conn = client.as_mut().expect("just connected");
                        match conn.request("POST", &path, BIB_XML.as_bytes()) {
                            Ok(resp) => {
                                if resp.close_after() {
                                    client = None;
                                }
                                return if resp.status == 200 {
                                    Ok(())
                                } else {
                                    Err(format!("status {}", resp.status))
                                };
                            }
                            Err(e) => {
                                client = None;
                                if attempt == 1 {
                                    return Err(e.to_string());
                                }
                            }
                        }
                    }
                    unreachable!("loop returns on the second attempt")
                }
            }
        }
    });

    if let Some(server) = internal {
        server.shutdown();
    }
    Ok(report)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("drive: {e}");
            std::process::exit(2);
        }
    };

    let (target_name, transport_name) = match args.target {
        Target::Inprocess => ("inprocess", "call"),
        Target::Served => (
            "served",
            match args.transport {
                Transport::KeepAlive => "keepalive",
                Transport::Close => "close",
            },
        ),
    };

    let report = match args.target {
        Target::Inprocess => drive_inprocess(&args),
        Target::Served => match drive_served(&args) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("drive: {e}");
                std::process::exit(1);
            }
        },
    };

    let lat = &report.latency;
    println!(
        "drive: {target_name}/{transport_name} n={} distinct={} c={} zipf={} -> \
         {:.1} req/s over {} requests ({} errors); \
         p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        args.nodes,
        args.driver.distinct,
        args.driver.max_concurrency,
        args.driver.zipf_exponent,
        report.qps,
        report.completed + report.errors,
        report.errors,
        lat.quantile_micros(0.50) as f64 / 1e3,
        lat.quantile_micros(0.95) as f64 / 1e3,
        lat.quantile_micros(0.99) as f64 / 1e3,
        lat.max_micros as f64 / 1e3,
    );
    if let Some(e) = &report.first_error {
        eprintln!("drive: first error: {e}");
    }

    let rss = peak_rss_kb()
        .map(|kb| kb.to_string())
        .unwrap_or_else(|| "null".to_owned());
    let row = format!(
        "{{\"bench\":\"drive\",\"scenario\":\"bib\",\"target\":\"{target_name}\",\
         \"transport\":\"{transport_name}\",\"engine\":\"{}\",\"nodes\":{},\
         \"distinct\":{},\"requests\":{},\"warmup\":{},\"max_concurrency\":{},\
         \"zipf_exponent\":{},\"rate\":{},\"qps\":{:.3},\"p50_ms\":{:.3},\
         \"p95_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3},\"mean_ms\":{:.3},\
         \"completed\":{},\"errors\":{},\"seconds\":{:.6},\"peak_rss_kb\":{rss}}}",
        args.engine.letter(),
        args.nodes,
        args.driver.distinct,
        args.driver.requests,
        args.driver.warmup,
        args.driver.max_concurrency,
        args.driver.zipf_exponent,
        args.driver.rate,
        report.qps,
        lat.quantile_micros(0.50) as f64 / 1e3,
        lat.quantile_micros(0.95) as f64 / 1e3,
        lat.quantile_micros(0.99) as f64 / 1e3,
        lat.max_micros as f64 / 1e3,
        lat.mean_micros() as f64 / 1e3,
        report.completed,
        report.errors,
        report.seconds,
    );
    if let Err(e) = append_bench_json(&row) {
        eprintln!("drive: writing bench row: {e}");
    }

    if report.errors > 0 {
        std::process::exit(1);
    }
}
