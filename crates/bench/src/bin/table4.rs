//! **Table 4** — recursive-query execution across engines (Section 7.2).
//!
//! The paper evaluates two recursive queries — one of constant and one of
//! quadratic selectivity — on graphs of 2K–16K nodes against the four
//! systems, reporting times and `-` for failures (timeout / manual
//! termination). We regenerate the experiment with the four in-repo
//! engines: recursive queries of the two classes are drawn from the Rec
//! workload family on the Bib scenario, and each engine runs under the
//! measurement budget; exhausted budgets print `-` exactly like the
//! paper's table.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin table4 [--full]
//! ```
//!
//! Runs on the shared evaluation harness: per graph size, one
//! [`EvalContext`] is built and every (engine × query) cell goes through
//! [`evaluate_matrix`] with a fresh per-cell budget and the Section 7.1
//! warm-run protocol.

use gmark_bench::{build_graph, fmt_matrix_cell, HarnessOptions, WorkloadKind};
use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_engines::{evaluate_matrix, EngineKind, EvalContext, EvalReport};

/// Picks the first *recursive* query of the given class from the Rec
/// workload (the paper's "small case analysis" selected its two queries
/// the same way: recursive, one per class, measurable somewhere).
fn pick_query(schema: &gmark_core::schema::Schema, class: SelectivityClass, seed: u64) -> Query {
    let w = WorkloadKind::Rec.workload(schema, seed);
    w.queries
        .iter()
        .find(|gq| gq.target == Some(class) && gq.query.is_recursive())
        .map(|gq| gq.query.clone())
        .expect("Rec workload contains recursive queries of every class")
}

/// The paper's canonical quadratic recursive query (Section 5.2.1): the
/// transitive closure of the power-law `knows` predicate, whose
/// materialization is what breaks `P` and `S` in Table 4.
fn knows_closure(schema: &gmark_core::schema::Schema) -> Query {
    let knows = Symbol::forward(schema.predicate_by_name("knows").expect("LSN has knows"));
    Query::single(Rule {
        head: vec![Var(0), Var(1)],
        body: vec![Conjunct {
            src: Var(0),
            expr: RegularExpr::star(vec![PathExpr(vec![knows])]),
            trg: Var(1),
        }],
    })
    .expect("well-formed")
}

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.engine_sizes();
    let schema = usecases::lsn();

    let q1 = pick_query(&schema, SelectivityClass::Constant, opts.seed);
    let q2 = knows_closure(&schema);
    println!("Table 4: recursive queries, execution time per engine and size");
    println!("Query 1 (constant):  {}", q1.display(&schema));
    println!("Query 2 (quadratic): {}", q2.display(&schema));
    println!();

    let graphs: Vec<(u64, gmark_store::Graph)> = sizes
        .iter()
        .map(|&n| (n, build_graph(&schema, n, opts.seed, opts.threads)))
        .collect();

    // One shared context and one (engine × query) matrix per graph size.
    let reports: Vec<EvalReport> = graphs
        .iter()
        .map(|(_, graph)| {
            let ctx = EvalContext::new(graph);
            evaluate_matrix(
                &ctx,
                &[&q1, &q2],
                &EngineKind::ALL,
                &opts.cell_budget(),
                &opts.matrix_options(),
            )
        })
        .collect();

    let header: Vec<String> = {
        let mut h: Vec<String> = sizes.iter().map(|n| format!("Q1 {}K", n / 1000)).collect();
        h.extend(sizes.iter().map(|n| format!("Q2 {}K", n / 1000)));
        h
    };
    gmark_bench::print_row("engine", &header, 10);

    for kind in EngineKind::ALL {
        let mut cells = Vec::new();
        for q in 0..2 {
            for report in &reports {
                let cell = report.cell(q, kind).expect("matrix covers every cell");
                cells.push(fmt_matrix_cell(cell));
            }
        }
        gmark_bench::print_row(kind.name(), &cells, 10);
    }
    println!(
        "\npaper reference (Table 4): P finished Q1 only at 2K/4K (3 400 s / \
         72 113 s) and failed beyond; S answered Q1 only at 2K (6 621 s); G \
         failed everywhere (degraded openCypher semantics — our G answers \
         the *degraded* query instead); D was the only engine to finish \
         everything (450–2 095 s). Expect the same qualitative pattern: \
         D completes all cells, P/S lose cells as size grows, G's numbers \
         are not comparable because it evaluates the degraded query."
    );
}
