//! **Fig. 10** — gMark-generated queries reproduce the runtime *shape* of
//! a fixed benchmark's original query load (Section 6.1, "Discussion on
//! the query loads").
//!
//! The paper takes three SP²Bench queries (one per selectivity class) and
//! three gMark-generated queries "of the same shape, size and selectivity"
//! on the SP encoding, and shows both sets exhibit the same asymptotic
//! runtime behavior per class. SP²Bench's binaries are not available
//! offline (DESIGN.md §4), so the "org" series here is a set of three
//! *hand-written, fixed* queries that mirror the published SP²Bench
//! queries' access patterns on the SP schema, while the "gMark" series is
//! drawn from the generated workload — the comparison the figure makes.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin fig10 [--full]
//! ```

use gmark_bench::{build_graph, fmt_matrix_cell_with_count, HarnessOptions, WorkloadKind};
use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Symbol, Var};
use gmark_core::selectivity::SelectivityClass;
use gmark_core::usecases;
use gmark_engines::{evaluate_matrix, EngineKind, EvalContext};

/// Hand-written fixed queries mirroring SP²Bench's Q-set character:
/// a journal–journal lookup (constant), an author-of-article listing
/// (linear), and a co-citation pattern (quadratic).
fn org_queries(schema: &gmark_core::schema::Schema) -> Vec<(SelectivityClass, Query)> {
    let creator = Symbol::forward(schema.predicate_by_name("creator").unwrap());
    let part_of = Symbol::forward(schema.predicate_by_name("partOf").unwrap());
    let cites = Symbol::forward(schema.predicate_by_name("cites").unwrap());
    let chain = |exprs: Vec<RegularExpr>| {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    };
    vec![
        // SP²Bench Q5-like: journals linked through shared articles —
        // both endpoints are the fixed journal type.
        (
            SelectivityClass::Constant,
            chain(vec![RegularExpr::path(PathExpr(vec![
                part_of.flipped(),
                part_of,
            ]))]),
        ),
        // SP²Bench Q2-like: (article, author) pairs.
        (
            SelectivityClass::Linear,
            chain(vec![RegularExpr::symbol(creator)]),
        ),
        // SP²Bench Q4-like: co-citation — articles citing a shared article
        // through prolific citers (a Cartesian-product chokepoint).
        (
            SelectivityClass::Quadratic,
            chain(vec![RegularExpr::path(PathExpr(vec![
                cites.flipped(),
                cites,
            ]))]),
        ),
    ]
}

fn main() {
    let opts = HarnessOptions::from_args();
    let sizes = opts.engine_sizes();
    let schema = usecases::sp();

    // The gMark series: one generated query per class of matching shape
    // and size (single-conjunct chains).
    let workload = WorkloadKind::Len.workload(&schema, opts.seed);
    let gmark_queries: Vec<(SelectivityClass, Query)> = SelectivityClass::ALL
        .iter()
        .map(|&class| {
            let q = workload
                .of_class(class)
                .map(|gq| gq.query.clone())
                .next()
                .expect("class present in workload");
            (class, q)
        })
        .collect();

    println!("Fig. 10: per-class runtime shape, fixed 'org'-style vs generated gMark queries (SP)");
    let header: Vec<String> = sizes.iter().map(|n| format!("{}K", n / 1000)).collect();
    gmark_bench::print_row("series", &header, 12);

    let graphs: Vec<gmark_store::Graph> = sizes
        .iter()
        .map(|&n| build_graph(&schema, n, opts.seed, opts.threads))
        .collect();

    // Both series through the shared harness: per graph, one context and
    // one matrix over all six queries on the triple-store engine.
    let org = org_queries(&schema);
    let series: Vec<(&str, &[(SelectivityClass, Query)])> =
        vec![("org", &org), ("gMark", &gmark_queries)];
    let queries: Vec<&Query> = series
        .iter()
        .flat_map(|(_, qs)| qs.iter().map(|(_, q)| q))
        .collect();
    let reports: Vec<_> = graphs
        .iter()
        .map(|graph| {
            let ctx = EvalContext::new(graph);
            evaluate_matrix(
                &ctx,
                &queries,
                &[EngineKind::TripleStore],
                &opts.cell_budget(),
                &opts.matrix_options(),
            )
        })
        .collect();

    let mut row = 0usize;
    for (label, qs) in &series {
        for (class, _) in qs.iter() {
            let mut cells = Vec::new();
            for report in &reports {
                let cell = report
                    .cell(row, EngineKind::TripleStore)
                    .expect("matrix covers every cell");
                cells.push(fmt_matrix_cell_with_count(cell));
            }
            gmark_bench::print_row(&format!("{class} ({label})"), &cells, 16);
            row += 1;
        }
    }
    println!(
        "\npaper reference (Fig. 10): for each class, the gMark curve tracks \
         the original benchmark's curve shape — constant stays flat, linear \
         grows ~n, quadratic grows fastest; absolute times differ (different \
         engines), the per-class growth shape is the reproduced claim. Cells \
         show time/result-count."
    );
}
