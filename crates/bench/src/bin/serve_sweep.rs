//! Serving-path throughput baseline: drives `gmark serve` end to end —
//! real TCP, real HTTP framing, the snapshot cache in the middle — and
//! emits one `BENCH_serve.json` row per phase via the `GMARK_BENCH_JSON`
//! protocol.
//!
//! Three phases bracket the cache's and the transport's contributions:
//!
//! * **cold** — every request carries a fresh seed, so every request
//!   pays a full pipeline run (requests/s ≈ build throughput);
//! * **warm** — every request carries the same plan over a fresh
//!   `Connection: close` connection, so after the first all are
//!   snapshot hits (requests/s ≈ connection setup + framing cost);
//! * **warm_keepalive** — the same hit-serving plan, but every request
//!   rides one persistent connection: the keep-alive fast path, whose
//!   margin over `warm` is exactly the per-request connection cost.
//!
//! The warm-over-cold ratio is the pay-once guarantee made measurable;
//! a collapse of `warm_rps` toward `cold_rps` in a future PR means the
//! snapshot cache stopped doing its job, and a collapse of
//! `warm_keepalive_rps` toward `warm_rps` means keep-alive stopped
//! saving the handshake. p50/p95 latencies and peak RSS ride along,
//! like the other bench rows.
//!
//! ```sh
//! cargo run -p gmark-bench --release --bin serve_sweep -- \
//!     [--nodes N] [--requests R] [--workers W] [--cache-mb M] [--seed S]
//! ```

use gmark::serve::http::{fetch, Client};
use gmark::serve::{ServeConfig, Server};
use gmark_bench::{append_bench_json, peak_rss_kb, take_flag_value};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const BIB_XML: &str = include_str!("../../../../examples/configs/bib.xml");

struct Args {
    nodes: u64,
    requests: usize,
    workers: usize,
    cache_mb: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 500,
        requests: 20,
        workers: 2,
        cache_mb: 128,
        seed: 0x5E27_E017,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--nodes" => args.nodes = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--requests" => args.requests = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--workers" => args.workers = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--cache-mb" => args.cache_mb = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            "--seed" => args.seed = parse(&take_flag_value(&argv, &mut i, &flag)?, &flag)?,
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if args.requests == 0 {
        return Err("--requests must be positive".to_owned());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag}: invalid value {v:?}"))
}

/// One request; panics on transport or non-200 status — a bench against
/// a misbehaving server would record garbage.
fn post(addr: SocketAddr, query: &str) -> Duration {
    let started = Instant::now();
    let resp = fetch(addr, "POST", &format!("/v1/run{query}"), BIB_XML.as_bytes())
        .expect("request round-trips");
    assert_eq!(
        resp.status,
        200,
        "serve_sweep request failed: {}",
        String::from_utf8_lossy(&resp.body)
    );
    started.elapsed()
}

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    let idx = (sorted.len().saturating_sub(1)) * pct / 100;
    sorted[idx]
}

struct Phase {
    name: &'static str,
    rps: f64,
    p50: Duration,
    p95: Duration,
    seconds: f64,
}

fn run_phase(
    name: &'static str,
    addr: SocketAddr,
    requests: usize,
    mut query: impl FnMut(usize) -> String,
) -> Phase {
    let started = Instant::now();
    let mut latencies: Vec<Duration> = (0..requests).map(|i| post(addr, &query(i))).collect();
    let seconds = started.elapsed().as_secs_f64();
    latencies.sort();
    Phase {
        name,
        rps: requests as f64 / seconds.max(1e-9),
        p50: percentile(&latencies, 50),
        p95: percentile(&latencies, 95),
        seconds,
    }
}

/// The keep-alive contrast to [`run_phase`]: the same requests, but all
/// riding one persistent connection (reconnecting only if the server
/// closes it). The margin over the `Connection: close` warm phase is
/// the per-request connection setup cost keep-alive removes.
fn run_phase_keepalive(
    name: &'static str,
    addr: SocketAddr,
    requests: usize,
    mut query: impl FnMut(usize) -> String,
) -> Phase {
    let started = Instant::now();
    let mut client: Option<Client> = None;
    let mut latencies: Vec<Duration> = (0..requests)
        .map(|i| {
            let path = format!("/v1/run{}", query(i));
            let request_started = Instant::now();
            let resp = loop {
                let conn = match client.as_mut() {
                    Some(conn) => conn,
                    None => {
                        client = Some(Client::connect(addr).expect("reconnects"));
                        client.as_mut().expect("just connected")
                    }
                };
                match conn.request("POST", &path, BIB_XML.as_bytes()) {
                    Ok(resp) => {
                        if resp.close_after() {
                            client = None;
                        }
                        break resp;
                    }
                    // The server may close between requests (idle
                    // window, cap); reconnect and retry.
                    Err(_) => client = None,
                }
            };
            assert_eq!(
                resp.status,
                200,
                "serve_sweep keep-alive request failed: {}",
                String::from_utf8_lossy(&resp.body)
            );
            request_started.elapsed()
        })
        .collect();
    let seconds = started.elapsed().as_secs_f64();
    latencies.sort();
    Phase {
        name,
        rps: requests as f64 / seconds.max(1e-9),
        p50: percentile(&latencies, 50),
        p95: percentile(&latencies, 95),
        seconds,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve_sweep: {e}");
            std::process::exit(2);
        }
    };

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: args.workers,
        cache_mb: args.cache_mb,
        ..ServeConfig::default()
    })
    .expect("server binds a free port");
    let addr = server.local_addr();

    // Cold: a fresh seed per request — every one is a full build.
    let nodes = args.nodes;
    let seed = args.seed;
    let cold = run_phase("cold", addr, args.requests, |i| {
        format!(
            "?nodes={nodes}&seed={}&artifact=summary.json",
            seed + 1 + i as u64
        )
    });
    // Warm: one plan for all requests — everything after the first
    // build is a snapshot hit (the first hit-warming request is part of
    // the measured batch; with R requests the phase pays 1 build + R-1
    // hits, which is exactly the steady-state it models).
    let warm = run_phase("warm", addr, args.requests, |_| {
        format!("?nodes={nodes}&seed={seed}&artifact=summary.json")
    });
    // Keep-alive contrast: the same hit-serving plan, one persistent
    // connection instead of one connection per request.
    let warm_keepalive = run_phase_keepalive("warm_keepalive", addr, args.requests, |_| {
        format!("?nodes={nodes}&seed={seed}&artifact=summary.json")
    });

    let stats = fetch(addr, "GET", "/v1/stats", b"").expect("stats round-trip");
    let stats_text = String::from_utf8_lossy(&stats.body).into_owned();
    server.shutdown();

    println!(
        "serve_sweep: bib n={} r={} workers={} -> cold {:.2} req/s \
         (p50 {:.1} ms, p95 {:.1} ms), warm {:.2} req/s (p50 {:.1} ms, p95 {:.1} ms), \
         warm+keep-alive {:.2} req/s (p50 {:.1} ms, p95 {:.1} ms)",
        args.nodes,
        args.requests,
        args.workers,
        cold.rps,
        cold.p50.as_secs_f64() * 1e3,
        cold.p95.as_secs_f64() * 1e3,
        warm.rps,
        warm.p50.as_secs_f64() * 1e3,
        warm.p95.as_secs_f64() * 1e3,
        warm_keepalive.rps,
        warm_keepalive.p50.as_secs_f64() * 1e3,
        warm_keepalive.p95.as_secs_f64() * 1e3,
    );
    println!("serve_sweep: stats {}", stats_text.trim_end());

    let rss = peak_rss_kb()
        .map(|kb| kb.to_string())
        .unwrap_or_else(|| "null".to_owned());
    for phase in [cold, warm, warm_keepalive] {
        let row = format!(
            "{{\"bench\":\"serve_sweep\",\"scenario\":\"bib\",\"phase\":\"{}\",\
             \"nodes\":{},\"requests\":{},\"workers\":{},\"cache_mb\":{},\
             \"requests_per_s\":{:.3},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\
             \"seconds\":{:.6},\"peak_rss_kb\":{rss}}}",
            phase.name,
            args.nodes,
            args.requests,
            args.workers,
            args.cache_mb,
            phase.rps,
            phase.p50.as_secs_f64() * 1e3,
            phase.p95.as_secs_f64() * 1e3,
            phase.seconds,
        );
        if let Err(e) = append_bench_json(&row) {
            eprintln!("serve_sweep: writing bench row: {e}");
        }
    }
}
