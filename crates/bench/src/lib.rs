//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Sections 6–7). Each artifact has a dedicated binary:
//!
//! | artifact | binary | what it prints |
//! |---|---|---|
//! | Table 2  | `table2` | measured `α` mean±sd per selectivity class, workloads Len/Dis/Con/Rec × use cases |
//! | Table 3  | `table3` | graph generation wall time per size × schema |
//! | Table 4  | `table4` | recursive-query times per engine × size, `-` on failure |
//! | Fig. 10  | `fig10`  | per-class runtimes: fixed "org"-style vs generated gMark queries on SP |
//! | Fig. 11  | `fig11`  | measured result counts vs fitted `β·n^α` per class, Bib workloads |
//! | Fig. 12  | `fig12`  | engine timing grid on non-recursive workloads Len/Dis/Con |
//! | §6.2     | `querygen_scale` | 1 000-query workload generation + translation time per scenario |
//!
//! Every binary accepts `--full` for the paper-scale parameterization
//! (larger graphs, more sizes); the default is scaled to finish on a
//! laptop. EXPERIMENTS.md records paper-vs-measured for every artifact.
//!
//! This library holds what the binaries share: the Section 6.2 workload
//! definitions (Len / Dis / Con / Rec), the Section 7.1 measurement
//! protocol (cold run discarded, warm runs averaged after dropping the
//! fastest and slowest), small table-printing helpers, and the
//! open/closed-loop traffic driver ([`driver`]) behind `gmark bench
//! drive`.

pub mod driver;

use gmark::run::{run_in_memory, RunOptions, RunPlan};
use gmark_core::schema::Schema;
use gmark_core::selectivity::SelectivityClass;
use gmark_core::workload::{QuerySize, Workload, WorkloadConfig};
use gmark_engines::{Budget, CellBudget, CellOutcome, Engine, EvalCell, EvalError, MatrixOptions};
use gmark_store::Graph;
use std::time::{Duration, Instant};

/// The four stress-test workload families of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Varying path lengths; no disjuncts, single conjunct, no recursion.
    Len,
    /// Disjuncts; single conjunct, no recursion.
    Dis,
    /// Conjuncts and disjuncts; no recursion.
    Con,
    /// Recursion (Kleene stars).
    Rec,
}

impl WorkloadKind {
    /// All four, in the paper's order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Len,
        WorkloadKind::Dis,
        WorkloadKind::Con,
        WorkloadKind::Rec,
    ];

    /// The non-recursive families used by Fig. 12.
    pub const NON_RECURSIVE: [WorkloadKind; 3] =
        [WorkloadKind::Len, WorkloadKind::Dis, WorkloadKind::Con];

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Len => "Len",
            WorkloadKind::Dis => "Dis",
            WorkloadKind::Con => "Con",
            WorkloadKind::Rec => "Rec",
        }
    }

    /// The workload configuration of this family: 30 queries — 10
    /// constant, 10 linear, 10 quadratic (Section 6.2).
    pub fn config(self, seed: u64) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::new(30).with_seed(seed);
        cfg.selectivities = SelectivityClass::ALL.to_vec();
        match self {
            WorkloadKind::Len => {
                cfg.query_size = QuerySize {
                    conjuncts: (1, 1),
                    disjuncts: (1, 1),
                    length: (1, 4),
                };
            }
            WorkloadKind::Dis => {
                cfg.query_size = QuerySize {
                    conjuncts: (1, 1),
                    disjuncts: (2, 4),
                    length: (1, 3),
                };
            }
            WorkloadKind::Con => {
                cfg.query_size = QuerySize {
                    conjuncts: (2, 3),
                    disjuncts: (1, 3),
                    length: (1, 3),
                };
            }
            WorkloadKind::Rec => {
                cfg.query_size = QuerySize {
                    conjuncts: (1, 2),
                    disjuncts: (1, 2),
                    length: (1, 3),
                };
                cfg.recursion_probability = 0.5;
            }
        }
        cfg
    }

    /// Generates the family's workload for a schema (through the unified
    /// pipeline API; output is identical to the historical
    /// `generate_workload` call).
    pub fn workload(self, schema: &Schema, seed: u64) -> Workload {
        let plan = RunPlan::builder(schema.clone())
            .workload(self.config(seed))
            .queries_only()
            .build()
            .expect("experiment plans are valid");
        run_in_memory(&plan, &RunOptions::default())
            .expect("experiment workloads generate")
            .workload
            .expect("queries-only plans materialize a workload")
    }
}

/// Common harness options parsed from argv.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Paper-scale parameters instead of the laptop-scale defaults.
    pub full: bool,
    /// Seed shared by all generation in an experiment.
    pub seed: u64,
    /// Worker threads for graph generation (`--threads N`; generation is
    /// bit-identical at every thread count).
    pub threads: usize,
}

impl HarnessOptions {
    /// Parses `--full`, `--seed N`, and `--threads N` from the process
    /// arguments.
    pub fn from_args() -> HarnessOptions {
        let mut opts = HarnessOptions {
            full: false,
            seed: 0x9A9E_2017,
            threads: 1,
        };
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            match a.as_str() {
                "--full" => opts.full = true,
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.threads = v;
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// The graph sizes of the selectivity experiments (Sections 6.2/7:
    /// 2K–32K in the paper; a smaller sweep by default).
    pub fn selectivity_sizes(&self) -> Vec<u64> {
        if self.full {
            vec![2_000, 4_000, 8_000, 16_000, 32_000]
        } else {
            vec![1_000, 2_000, 4_000]
        }
    }

    /// The engine-comparison sizes (2K–16K in the paper).
    pub fn engine_sizes(&self) -> Vec<u64> {
        if self.full {
            vec![2_000, 4_000, 8_000, 16_000]
        } else {
            vec![1_000, 2_000, 4_000]
        }
    }

    /// Graph-generation scalability sizes (Table 3: 100K–100M).
    pub fn scalability_sizes(&self) -> Vec<u64> {
        if self.full {
            vec![100_000, 1_000_000, 10_000_000, 100_000_000]
        } else {
            vec![100_000, 1_000_000, 10_000_000]
        }
    }

    /// The per-query evaluation budget.
    pub fn budget(&self) -> Budget {
        let cb = self.cell_budget();
        Budget::with_limits(cb.timeout, cb.max_tuples)
    }

    /// The per-cell budget recipe for the evaluation matrix harness: each
    /// (engine × query) cell starts a fresh clock, so late cells are not
    /// charged for earlier ones.
    pub fn cell_budget(&self) -> CellBudget {
        if self.full {
            CellBudget {
                timeout: Some(Duration::from_secs(120)),
                max_tuples: 50_000_000,
            }
        } else {
            CellBudget {
                timeout: Some(Duration::from_secs(10)),
                max_tuples: 20_000_000,
            }
        }
    }

    /// Warm runs for the timing protocol (5 in the paper).
    pub fn warm_runs(&self) -> usize {
        if self.full {
            5
        } else {
            3
        }
    }

    /// Matrix options for [`gmark_engines::evaluate_matrix`], carrying the
    /// harness thread count and the Section 7.1 warm-run protocol.
    pub fn matrix_options(&self) -> MatrixOptions {
        MatrixOptions {
            threads: self.threads,
            warm_runs: self.warm_runs(),
            ..MatrixOptions::default()
        }
    }
}

/// Takes the value following `argv[*i]` (the occurrence of `flag`),
/// advancing `*i`; names the flag in the error when the value is missing.
/// The shared primitive for the bench binaries' argv mini-parsers.
pub fn take_flag_value(argv: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    argv.get(*i)
        .cloned()
        .ok_or_else(|| format!("missing value after {flag}"))
}

/// Peak resident set size of this process in kibibytes, read from Linux
/// procfs (`VmHWM` in `/proc/self/status`); `None` where that is
/// unavailable. The scale sweep records this per *process* (one size per
/// invocation), which is what makes the streamed-vs-materialized memory
/// comparison in `BENCH_gen.json` meaningful.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Appends one line to the `GMARK_BENCH_JSON` export file if that
/// environment variable is set (the same protocol the criterion stub and
/// `scripts/bench.sh` use to assemble `BENCH_gen.json`).
pub fn append_bench_json(row: &str) -> std::io::Result<()> {
    if let Ok(path) = std::env::var("GMARK_BENCH_JSON") {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{row}")?;
    }
    Ok(())
}

/// Generates a graph for an experiment (shared seed discipline), through
/// the unified pipeline API — bit-identical to the historical
/// `generate_graph` call at every thread count.
pub fn build_graph(schema: &Schema, n: u64, seed: u64, threads: usize) -> Graph {
    let plan = RunPlan::builder(schema.clone())
        .nodes(n)
        .build()
        .expect("experiment plans are valid");
    run_in_memory(&plan, &RunOptions::with_seed(seed).threads(threads))
        .expect("experiment graphs generate")
        .graph
        .expect("graph plans materialize a graph")
}

/// The Section 7.1 measurement protocol: one cold run (discarded), `warm`
/// warm runs; drop the fastest and slowest warm run and average the rest.
/// Returns the mean duration and the result count, or the failure.
pub fn measure(
    engine: &dyn Engine,
    graph: &Graph,
    query: &gmark_core::query::Query,
    budget: &Budget,
    warm: usize,
) -> Result<(Duration, u64), EvalError> {
    let cold = engine.evaluate(graph, query, budget)?;
    let count = cold.count();
    let mut times = Vec::with_capacity(warm);
    for _ in 0..warm {
        let start = Instant::now();
        engine.evaluate(graph, query, budget)?;
        times.push(start.elapsed().as_secs_f64());
    }
    let mean = gmark_stats::summary::warm_run_average(&times);
    Ok((Duration::from_secs_f64(mean), count))
}

/// Formats a duration like the paper's Table 3 (`1m28.725s` / `0m0.057s`).
pub fn fmt_minutes(d: Duration) -> String {
    let total = d.as_secs_f64();
    let minutes = (total / 60.0).floor() as u64;
    let seconds = total - minutes as f64 * 60.0;
    format!("{minutes}m{seconds:.3}s")
}

/// Formats seconds with millisecond resolution for grid cells.
pub fn fmt_cell(result: &Result<(Duration, u64), EvalError>) -> String {
    match result {
        Ok((d, _)) => format!("{:.3}s", d.as_secs_f64()),
        Err(_) => "-".to_owned(),
    }
}

/// Formats one evaluation-matrix cell like the paper's grids: warm-run
/// mean seconds for completed cells, `-` for budget failures.
pub fn fmt_matrix_cell(cell: &EvalCell) -> String {
    match &cell.outcome {
        CellOutcome::Answers { .. } => format!("{:.3}s", cell.seconds),
        CellOutcome::Failed(_) => "-".to_owned(),
    }
}

/// Formats one matrix cell as `time/result-count` (Fig. 10 style).
pub fn fmt_matrix_cell_with_count(cell: &EvalCell) -> String {
    match &cell.outcome {
        CellOutcome::Answers { count, .. } => format!("{:.3}s/{count}", cell.seconds),
        CellOutcome::Failed(_) => "-".to_owned(),
    }
}

/// Prints a row of fixed-width cells.
pub fn print_row(label: &str, cells: &[String], width: usize) {
    let mut line = format!("{label:<16}");
    for c in cells {
        line.push_str(&format!(" {c:>w$}", w = width));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_kinds_have_expected_shapes() {
        let bib = gmark_core::usecases::bib();
        for kind in WorkloadKind::ALL {
            let w = kind.workload(&bib, 1);
            assert_eq!(w.queries.len(), 30, "{}", kind.name());
            for gq in &w.queries {
                let (_, conjuncts, disjuncts, _) = gq.query.size();
                match kind {
                    WorkloadKind::Len | WorkloadKind::Dis => assert_eq!(conjuncts, 1),
                    WorkloadKind::Con => assert!(conjuncts >= 2),
                    WorkloadKind::Rec => {}
                }
                if kind == WorkloadKind::Dis {
                    // Disjunct sampling may merge duplicate paths, but the
                    // request was for ≥ 2.
                    assert!(disjuncts >= 1);
                }
            }
            if kind == WorkloadKind::Rec {
                assert!(
                    w.queries.iter().any(|gq| gq.query.is_recursive()),
                    "Rec workload should contain stars"
                );
            } else {
                assert!(w.queries.iter().all(|gq| !gq.query.is_recursive()));
            }
        }
    }

    #[test]
    fn workload_kinds_balance_classes() {
        let bib = gmark_core::usecases::bib();
        let w = WorkloadKind::Len.workload(&bib, 2);
        for class in SelectivityClass::ALL {
            let n = w.of_class(class).count();
            assert!(n >= 9, "{class}: {n}");
        }
    }

    #[test]
    fn measure_protocol_runs() {
        let bib = gmark_core::usecases::bib();
        let graph = build_graph(&bib, 500, 3, 2);
        let w = WorkloadKind::Len.workload(&bib, 4);
        let engine = gmark_engines::TripleStoreEngine;
        let (d, count) = measure(&engine, &graph, &w.queries[0].query, &Budget::default(), 3)
            .expect("small query fits budget");
        assert!(d.as_secs_f64() >= 0.0);
        let direct = engine
            .evaluate(&graph, &w.queries[0].query, &Budget::default())
            .unwrap();
        assert_eq!(count, direct.count());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_minutes(Duration::from_millis(57)), "0m0.057s");
        assert_eq!(fmt_minutes(Duration::from_secs_f64(88.725)), "1m28.725s");
        assert_eq!(fmt_cell(&Err(gmark_engines::EvalError::Timeout)), "-");
    }

    #[test]
    fn harness_options_defaults() {
        let o = HarnessOptions {
            full: false,
            seed: 1,
            threads: 1,
        };
        assert_eq!(o.selectivity_sizes().len(), 3);
        assert_eq!(o.scalability_sizes().len(), 3);
        let f = HarnessOptions {
            full: true,
            seed: 1,
            threads: 1,
        };
        assert!(f.selectivity_sizes().contains(&32_000));
        assert!(f.scalability_sizes().contains(&100_000_000));
    }
}
