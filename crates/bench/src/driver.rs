//! The open/closed-loop traffic driver behind `gmark bench drive`.
//!
//! A drive is a fixed, precomputed request sequence fired at a target by
//! a pool of worker threads, with per-request latencies collected into
//! the same log-bucketed [`LatencyHistogram`] the serve daemon uses.
//! Three decisions shape the design:
//!
//! * **The sequence is deterministic.** [`request_sequence`] draws every
//!   popularity index up front from one seeded [`Prng`] — the same
//!   `(seed, zipf_exponent, distinct)` triple always yields the same
//!   sequence of request indices, no matter how many workers later fire
//!   them or how the OS interleaves them. Thread scheduling decides
//!   *when* each request runs, never *which* requests run.
//! * **Closed loop by default, open loop on request.** With `rate == 0`
//!   each of the `max_concurrency` workers fires its next request the
//!   moment the previous one returns — measuring sustained capacity.
//!   With `rate > 0` requests are fired on a fixed schedule and latency
//!   is measured from the *scheduled* start, so queueing delay behind a
//!   slow target is charged to the target (no coordinated omission).
//! * **Warmup is excluded.** The first `warmup` requests of the
//!   sequence run through the same workers but are neither timed nor
//!   counted; the measured phase starts at a barrier after warmup
//!   drains, so caches and pools reach steady state first.
//!
//! The driver knows nothing about HTTP or engines: the target is a
//! closure factory, called once per worker (a worker's place to open a
//! keep-alive connection), returning the closure that fires one request
//! by popularity index.

use gmark_stats::{DegreeSampler, HistogramSnapshot, LatencyHistogram, Prng, Zipf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Everything that parameterizes one drive.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Measured requests (after warmup).
    pub requests: usize,
    /// Untimed warmup requests preceding the measured phase.
    pub warmup: usize,
    /// Closed-loop worker threads (minimum 1).
    pub max_concurrency: usize,
    /// Popularity domain: requests address indices in `0..distinct`
    /// (minimum 1).
    pub distinct: usize,
    /// Zipf skew of the popularity distribution; `0` means uniform.
    pub zipf_exponent: f64,
    /// Seed of the request sequence.
    pub seed: u64,
    /// Open-loop target rate in requests/second; `0` means closed loop.
    pub rate: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            requests: 200,
            warmup: 20,
            max_concurrency: 4,
            distinct: 8,
            zipf_exponent: 1.0,
            seed: 0xD21_7E57,
            rate: 0.0,
        }
    }
}

/// What one drive measured.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Successfully answered measured requests.
    pub completed: u64,
    /// Measured requests that returned an error.
    pub errors: u64,
    /// The first error message seen, for diagnostics.
    pub first_error: Option<String>,
    /// Wall-clock seconds of the measured phase.
    pub seconds: f64,
    /// Sustained throughput: `completed / seconds`.
    pub qps: f64,
    /// Latency distribution of the completed requests.
    pub latency: HistogramSnapshot,
}

/// The full (warmup + measured) request sequence: one popularity index
/// in `0..distinct` per request, Zipf-skewed toward low indices when
/// `zipf_exponent > 0`, uniform otherwise.
///
/// This is the determinism anchor of the driver: the sequence is a pure
/// function of `(seed, zipf_exponent, distinct, warmup + requests)` and
/// is drawn entirely before any worker starts.
pub fn request_sequence(cfg: &DriverConfig) -> Vec<usize> {
    let distinct = cfg.distinct.max(1) as u64;
    let total = cfg.warmup + cfg.requests;
    let mut prng = Prng::seed_from_u64(cfg.seed);
    if cfg.zipf_exponent > 0.0 {
        let zipf = Zipf::new(distinct, cfg.zipf_exponent);
        (0..total)
            .map(|_| (zipf.sample(&mut prng) - 1) as usize)
            .collect()
    } else {
        (0..total).map(|_| prng.below(distinct) as usize).collect()
    }
}

/// Runs one drive: `setup(worker_index)` is called once inside each
/// worker thread (open a connection, clone a handle, …) and must return
/// the closure that fires a single request for a popularity index.
///
/// Workers claim requests off a shared counter, so the division of the
/// sequence among workers is scheduling-dependent — but the sequence
/// itself, and therefore the multiset of requests fired, is not.
pub fn drive<Setup, Fire>(cfg: &DriverConfig, setup: Setup) -> DriveReport
where
    Setup: Fn(usize) -> Fire + Sync,
    Fire: FnMut(usize) -> Result<(), String>,
{
    let sequence = request_sequence(cfg);
    let workers = cfg.max_concurrency.max(1);
    let warmup = cfg.warmup;
    let total = sequence.len();

    let latency = LatencyHistogram::new();
    let completed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let first_error: Mutex<Option<String>> = Mutex::new(None);
    let next_warmup = AtomicUsize::new(0);
    let next_measured = AtomicUsize::new(warmup);
    // Two barriers bracket the start stamp: workers park at the first
    // once warmup drains, the coordinator stamps `start`, and the
    // second releases the measured phase — so every worker reads the
    // same epoch for open-loop scheduling.
    let warmup_done = Barrier::new(workers + 1);
    let measured_go = Barrier::new(workers + 1);
    let start: OnceLock<Instant> = OnceLock::new();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let sequence = &sequence;
            let setup = &setup;
            let latency = &latency;
            let completed = &completed;
            let errors = &errors;
            let first_error = &first_error;
            let next_warmup = &next_warmup;
            let next_measured = &next_measured;
            let warmup_done = &warmup_done;
            let measured_go = &measured_go;
            let start = &start;
            scope.spawn(move || {
                let mut fire = setup(w);
                loop {
                    let i = next_warmup.fetch_add(1, Ordering::Relaxed);
                    if i >= warmup {
                        break;
                    }
                    let _ = fire(sequence[i]);
                }
                warmup_done.wait();
                measured_go.wait();
                let epoch = *start.get().expect("coordinator stamped the epoch");
                loop {
                    let i = next_measured.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let begun = if cfg.rate > 0.0 {
                        // Open loop: fire on schedule; latency counted
                        // from the scheduled start, so target-side
                        // backlog is charged to the target.
                        let scheduled =
                            epoch + Duration::from_secs_f64((i - warmup) as f64 / cfg.rate);
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        scheduled
                    } else {
                        Instant::now()
                    };
                    match fire(sequence[i]) {
                        Ok(()) => {
                            latency.record(begun.elapsed());
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            first_error.lock().unwrap().get_or_insert(e);
                        }
                    }
                }
            });
        }
        warmup_done.wait();
        start.set(Instant::now()).expect("epoch stamped once");
        measured_go.wait();
    });

    let seconds = start
        .get()
        .expect("epoch stamped before workers ran")
        .elapsed()
        .as_secs_f64();
    let completed = completed.into_inner();
    DriveReport {
        completed,
        errors: errors.into_inner(),
        first_error: first_error.into_inner().unwrap(),
        seconds,
        qps: if seconds > 0.0 {
            completed as f64 / seconds
        } else {
            0.0
        },
        latency: latency.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sequence_is_a_pure_function_of_the_config() {
        let cfg = DriverConfig {
            requests: 500,
            warmup: 50,
            distinct: 16,
            zipf_exponent: 1.0,
            seed: 42,
            ..DriverConfig::default()
        };
        let a = request_sequence(&cfg);
        let b = request_sequence(&cfg);
        assert_eq!(a, b, "same config, same sequence");
        assert_eq!(a.len(), 550);
        assert!(a.iter().all(|&i| i < 16));

        let skewed = request_sequence(&DriverConfig {
            seed: 43,
            ..cfg.clone()
        });
        assert_ne!(a, skewed, "a different seed reshuffles the sequence");
    }

    #[test]
    fn zipf_skew_concentrates_on_low_indices_and_zero_means_uniform() {
        let cfg = DriverConfig {
            requests: 4_000,
            warmup: 0,
            distinct: 10,
            zipf_exponent: 1.2,
            seed: 7,
            ..DriverConfig::default()
        };
        let seq = request_sequence(&cfg);
        let hot = seq.iter().filter(|&&i| i == 0).count();
        assert!(
            hot > seq.len() / 5,
            "index 0 should dominate a Zipf(1.2) draw, got {hot}/{}",
            seq.len()
        );

        let uniform = request_sequence(&DriverConfig {
            zipf_exponent: 0.0,
            ..cfg
        });
        let hot = uniform.iter().filter(|&&i| i == 0).count();
        assert!(
            hot < uniform.len() / 5,
            "uniform draw should not concentrate, got {hot}/{}",
            uniform.len()
        );
    }

    #[test]
    fn closed_loop_drive_completes_every_request_and_times_them() {
        let cfg = DriverConfig {
            requests: 64,
            warmup: 8,
            max_concurrency: 4,
            distinct: 4,
            zipf_exponent: 1.0,
            seed: 1,
            rate: 0.0,
        };
        let fired = AtomicU64::new(0);
        let report = drive(&cfg, |_worker| {
            let fired = &fired;
            move |_idx| {
                fired.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(300));
                Ok(())
            }
        });
        assert_eq!(report.completed, 64);
        assert_eq!(report.errors, 0);
        assert_eq!(
            fired.load(Ordering::Relaxed),
            64 + 8,
            "warmup requests fire too"
        );
        assert!(report.qps > 0.0);
        assert!(
            report.latency.quantile_micros(0.50) > 0,
            "a 300µs request cannot have a zero p50"
        );
        assert!(
            report.latency.quantile_micros(0.99) >= report.latency.quantile_micros(0.50),
            "quantiles are monotone"
        );
    }

    #[test]
    fn open_loop_drive_paces_and_charges_backlog_to_the_target() {
        let cfg = DriverConfig {
            requests: 40,
            warmup: 0,
            max_concurrency: 2,
            distinct: 2,
            zipf_exponent: 0.0,
            seed: 2,
            rate: 400.0,
        };
        let report = drive(&cfg, |_worker| |_idx| Ok(()));
        assert_eq!(report.completed, 40);
        // 40 requests at 400/s occupy ~0.1s of schedule.
        assert!(
            report.seconds >= 0.08,
            "pacing must stretch the phase, got {}s",
            report.seconds
        );
    }

    #[test]
    fn errors_are_counted_and_the_first_message_kept() {
        let cfg = DriverConfig {
            requests: 10,
            warmup: 0,
            max_concurrency: 1,
            distinct: 4,
            zipf_exponent: 0.0,
            seed: 3,
            rate: 0.0,
        };
        let report = drive(&cfg, |_worker| {
            |idx: usize| {
                if idx == 0 {
                    Err("index zero refused".to_owned())
                } else {
                    Ok(())
                }
            }
        });
        assert_eq!(report.completed + report.errors, 10);
        assert!(report.errors > 0, "seed 3 must hit index 0 at least once");
        assert_eq!(report.first_error.as_deref(), Some("index zero refused"));
    }
}
