//! Criterion microbenchmarks for the generators (Table 3 / Section 6.2
//! companions) and the DESIGN.md ablations.
//!
//! Groups:
//! * `graph_gen`    — per-scenario graph generation throughput (Table 3's
//!   unit of work at laptop sizes);
//! * `query_gen`    — workload generation (Section 6.2's query-generation
//!   scalability);
//! * `ablation`     — the Gaussian fast path on/off, and parallel
//!   generation with 1 vs 4 threads (design choices called out in
//!   DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmark_core::gen::{generate_into, GeneratorOptions};
use gmark_core::schema::GraphConfig;
use gmark_core::usecases;
use gmark_core::workload::{generate_workload, WorkloadConfig};
use gmark_store::CountingSink;
use std::hint::black_box;

fn graph_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_gen");
    for (name, schema) in usecases::all() {
        let n = 50_000u64;
        let config = GraphConfig::new(n, schema.clone());
        // Report throughput in edges/second based on a probe run.
        let mut probe = CountingSink::new(schema.predicate_count());
        generate_into(&config, &GeneratorOptions::with_seed(1), &mut probe);
        group.throughput(Throughput::Elements(probe.total()));
        group.bench_function(BenchmarkId::new("50K_nodes", name), |b| {
            b.iter(|| {
                let mut sink = CountingSink::new(schema.predicate_count());
                generate_into(&config, &GeneratorOptions::with_seed(1), &mut sink);
                black_box(sink.total())
            })
        });
    }
    group.finish();
}

fn query_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_gen");
    for (name, schema) in usecases::all() {
        let mut cfg = WorkloadConfig::new(100).with_seed(2);
        cfg.recursion_probability = 0.2;
        group.bench_function(BenchmarkId::new("100_queries", name), |b| {
            b.iter(|| black_box(generate_workload(&schema, &cfg).unwrap().0.queries.len()))
        });
    }
    group.finish();
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    // Gaussian fast path: LSN is Gaussian-heavy.
    let schema = usecases::lsn();
    let config = GraphConfig::new(50_000, schema.clone());
    for (label, fast) in [
        ("gaussian_fast_path_on", true),
        ("gaussian_fast_path_off", false),
    ] {
        let opts = GeneratorOptions {
            gaussian_fast_path: fast,
            ..GeneratorOptions::with_seed(3)
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sink = CountingSink::new(schema.predicate_count());
                generate_into(&config, &opts, &mut sink);
                black_box(sink.total())
            })
        });
    }
    // Thread scaling (uses the graph-building path, which shards).
    for threads in [1usize, 4] {
        let opts = GeneratorOptions {
            threads,
            ..GeneratorOptions::with_seed(4)
        };
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let (graph, _) = gmark_core::gen::generate_graph(&config, &opts);
                black_box(graph.edge_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, graph_gen, query_gen, ablation);
criterion_main!(benches);
