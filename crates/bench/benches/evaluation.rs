//! Criterion microbenchmarks for query evaluation (Fig. 12 / Table 4
//! companions): per-engine latency on one query of each selectivity class,
//! plus the selectivity-estimation machinery itself (which the paper
//! requires to be cheap enough to run at workload-generation time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmark_core::gen::{generate_graph, GeneratorOptions};
use gmark_core::schema::GraphConfig;
use gmark_core::selectivity::graph::{SchemaGraph, SelectivityGraph};
use gmark_core::selectivity::{Estimator, SelectivityClass};
use gmark_core::usecases;
use gmark_core::workload::{generate_workload, WorkloadConfig};
use gmark_engines::{Budget, EngineKind, EvalContext};
use std::hint::black_box;
use std::time::Duration;

fn engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.measurement_time(Duration::from_secs(8));
    let schema = usecases::bib();
    let config = GraphConfig::new(2_000, schema.clone());
    let (graph, _) = generate_graph(&config, &GeneratorOptions::with_seed(5));
    let (workload, _) = generate_workload(&schema, &WorkloadConfig::new(3).with_seed(6)).unwrap();
    // One shared context — the benchmark measures the per-query hot path,
    // not per-query index rebuilds.
    let ctx = EvalContext::new(&graph);
    for class in SelectivityClass::ALL {
        let Some(gq) = workload.of_class(class).next() else {
            continue;
        };
        for kind in EngineKind::ALL {
            group.bench_function(
                BenchmarkId::new(kind.name().replace('/', "_"), class.to_string()),
                |b| {
                    b.iter(|| {
                        let budget = Budget::default();
                        black_box(kind.evaluate(&ctx, &gq.query, &budget).map(|a| a.count()))
                    })
                },
            );
        }
    }
    group.finish();
}

fn selectivity_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("selectivity");
    for (name, schema) in usecases::all() {
        group.bench_function(BenchmarkId::new("schema_graph_build", name), |b| {
            b.iter(|| black_box(SchemaGraph::build(&schema).len()))
        });
        let gs = SchemaGraph::build(&schema);
        group.bench_function(BenchmarkId::new("gsel_build_1_4", name), |b| {
            b.iter(|| {
                let gsel = SelectivityGraph::build(&gs, 1, 4);
                black_box(gsel.length_interval())
            })
        });
        group.bench_function(BenchmarkId::new("distance_matrix", name), |b| {
            b.iter(|| black_box(gs.distance_matrix().len()))
        });
        // Whole-query estimation cost.
        let (workload, _) =
            generate_workload(&schema, &WorkloadConfig::new(3).with_seed(9)).unwrap();
        let est = Estimator::new(&schema);
        group.bench_function(BenchmarkId::new("estimate_alpha", name), |b| {
            b.iter(|| {
                for gq in &workload.queries {
                    black_box(est.alpha(&gq.query));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engines, selectivity_machinery);
criterion_main!(benches);
