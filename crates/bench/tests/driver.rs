//! End-to-end pins for the `gmark bench drive` traffic driver: the
//! deterministic request sequence, and a real keep-alive drive against
//! an in-process `gmark serve` with nonzero percentiles and no errors.

use gmark::serve::http::Client;
use gmark::serve::{ServeConfig, Server};
use gmark_bench::driver::{drive, request_sequence, DriverConfig};

const BIB_XML: &str = include_str!("../../../examples/configs/bib.xml");

/// Same seed and Zipf exponent ⇒ the identical request sequence, request
/// by request — the driver's determinism contract. Worker count is *not*
/// in the sequence's inputs, so this holds at any concurrency.
#[test]
fn same_seed_and_exponent_pin_the_request_sequence() {
    let cfg = DriverConfig {
        requests: 300,
        warmup: 30,
        max_concurrency: 1,
        distinct: 12,
        zipf_exponent: 0.8,
        seed: 0xBEEF,
        rate: 0.0,
    };
    let reference = request_sequence(&cfg);
    assert_eq!(reference.len(), 330);

    let again = request_sequence(&DriverConfig {
        max_concurrency: 8,
        ..cfg.clone()
    });
    assert_eq!(
        reference, again,
        "concurrency must not perturb the sequence"
    );

    let other_exponent = request_sequence(&DriverConfig {
        zipf_exponent: 2.0,
        ..cfg
    });
    assert_ne!(
        reference, other_exponent,
        "the exponent is a sequence input"
    );
}

/// A closed-loop keep-alive drive against a live server: every request
/// answered, no errors, and real (nonzero) latency percentiles.
#[test]
fn keep_alive_drive_against_a_live_server_reports_nonzero_percentiles() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_mb: 64,
        ..ServeConfig::default()
    })
    .expect("binds");
    let addr = server.local_addr();

    let cfg = DriverConfig {
        requests: 60,
        warmup: 10,
        max_concurrency: 2,
        distinct: 3,
        zipf_exponent: 1.0,
        seed: 11,
        rate: 0.0,
    };
    let report = drive(&cfg, |_worker| {
        let mut client: Option<Client> = None;
        move |idx: usize| -> Result<(), String> {
            let path = format!("/v1/run?nodes=60&seed={}&artifact=summary.json", 100 + idx);
            for attempt in 0..2 {
                if client.is_none() {
                    client = Some(Client::connect(addr).map_err(|e| e.to_string())?);
                }
                match client
                    .as_mut()
                    .unwrap()
                    .request("POST", &path, BIB_XML.as_bytes())
                {
                    Ok(resp) => {
                        if resp.close_after() {
                            client = None;
                        }
                        return if resp.status == 200 {
                            Ok(())
                        } else {
                            Err(format!("status {}", resp.status))
                        };
                    }
                    Err(e) => {
                        client = None;
                        if attempt == 1 {
                            return Err(e.to_string());
                        }
                    }
                }
            }
            unreachable!()
        }
    });
    server.shutdown();

    assert_eq!(
        (report.completed, report.errors),
        (60, 0),
        "first error: {:?}",
        report.first_error
    );
    assert!(report.qps > 0.0);
    for q in [0.50, 0.95, 0.99] {
        assert!(
            report.latency.quantile_micros(q) > 0,
            "p{} must be nonzero over real TCP",
            (q * 100.0) as u32
        );
    }
    assert!(report.latency.max_micros >= report.latency.quantile_micros(0.99));
}
