//! Property-based tests for the XML layer and configuration round trips.

use gmark_config::xml::{escape, parse, Element};
use gmark_config::{parse_config, write_config};
use gmark_core::schema::{
    Distribution, GraphConfig, Occurrence, PredicateId, SchemaBuilder, TypeId,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn escape_round_trips_through_text_content(s in "[ -~]{0,60}") {
        // Any printable-ASCII text survives element embedding.
        let doc = format!("<a>{}</a>", escape(&s));
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(parsed.text_content(), s.trim());
    }

    #[test]
    fn escape_round_trips_through_attributes(s in "[ -~]{0,60}") {
        let doc = format!("<a k=\"{}\"/>", escape(&s));
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(parsed.get_attr("k").unwrap(), s);
    }

    #[test]
    fn pretty_print_parse_round_trip(
        names in prop::collection::vec("[a-z][a-z0-9]{0,8}", 1..6),
        texts in prop::collection::vec("[ -~&&[^<&]]{1,12}", 1..6),
    ) {
        // A nested element chain with text leaves survives printing.
        let mut root = Element::new("root");
        let n = names.len().min(texts.len());
        for (name, text) in names.iter().zip(&texts) {
            root = root.child(Element::new(name).text(text.trim().to_owned()));
        }
        let printed = root.to_pretty_string();
        let parsed = parse(&printed).unwrap();
        prop_assert_eq!(parsed.name.as_str(), "root");
        prop_assert_eq!(parsed.elements().count(), n);
    }
}

fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        (0u64..5, 0u64..5).prop_map(|(a, b)| Distribution::uniform(a.min(b), a.max(b))),
        (0.5f64..9.0, 0.0f64..3.0).prop_map(|(mu, s)| Distribution::gaussian(mu, s)),
        (1.1f64..4.0).prop_map(Distribution::zipfian),
        Just(Distribution::NonSpecified),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_configs_round_trip(
        n in 1u64..1_000_000,
        n_types in 1usize..5,
        n_preds in 1usize..4,
        constraints in prop::collection::vec(
            (0usize..5, 0usize..4, 0usize..5, arb_distribution(), arb_distribution()),
            0..6,
        ),
    ) {
        let mut b = SchemaBuilder::new();
        for i in 0..n_types {
            let occ = if i % 2 == 0 {
                Occurrence::Proportion((i + 1) as f64 / 10.0)
            } else {
                Occurrence::Fixed(i as u64 * 7 + 1)
            };
            b.node_type(&format!("type{i}"), occ);
        }
        for i in 0..n_preds {
            let occ = (i % 2 == 0).then_some(Occurrence::Proportion(0.25));
            b.predicate(&format!("pred{i}"), occ);
        }
        for (s, p, t, din, dout) in constraints {
            b.edge(
                TypeId(s % n_types),
                PredicateId(p % n_preds),
                TypeId(t % n_types),
                din,
                dout,
            );
        }
        let graph = GraphConfig::new(n, b.build().unwrap());
        let xml = write_config(&graph, None);
        let parsed = parse_config(&xml).unwrap();
        // Compare everything except float printing jitter: the writer uses
        // Display for f64, which round-trips exactly in Rust.
        prop_assert_eq!(parsed.graph, graph);
    }
}
