//! A minimal XML parser and writer.
//!
//! Supports exactly the subset gMark configuration files use: nested
//! elements with attributes, text content, comments, an optional XML
//! declaration, self-closing tags, and the five predefined entities
//! (`&amp; &lt; &gt; &quot; &apos;`). Out of scope (rejected or ignored):
//! namespaces, DTDs, processing instructions beyond the declaration,
//! and CDATA sections.

use std::fmt;

/// An XML element: name, attributes, children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node: element or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Text content (entity-decoded, whitespace preserved).
    Text(String),
}

impl Element {
    /// Creates an element with a name.
    pub fn new(name: &str) -> Element {
        Element {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: &str, value: impl fmt::Display) -> Element {
        self.attrs.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds text content (builder style).
    pub fn text(mut self, text: impl fmt::Display) -> Element {
        self.children.push(Node::Text(text.to_string()));
        self
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements with a given name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with a given name.
    pub fn first(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of this element (direct children only),
    /// trimmed.
    pub fn text_content(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s.trim().to_owned()
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        // Pure-text elements render inline.
        let only_text = self.children.iter().all(|n| matches!(n, Node::Text(_)));
        if only_text {
            out.push('>');
            out.push_str(&escape(&self.text_content()));
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push_str(">\n");
        for n in &self.children {
            match n {
                Node::Element(e) => e.write_pretty(out, depth + 1),
                Node::Text(t) => {
                    let t = t.trim();
                    if !t.is_empty() {
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(&escape(t));
                        out.push('\n');
                    }
                }
            }
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escapes text for inclusion in XML.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document, returning its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_comment(&mut self) -> Result<bool, XmlError> {
        if !self.starts_with("<!--") {
            return Ok(false);
        }
        let start = self.pos;
        self.pos += 4;
        while self.pos < self.input.len() && !self.starts_with("-->") {
            self.pos += 1;
        }
        if !self.starts_with("-->") {
            self.pos = start;
            return Err(self.err("unterminated comment"));
        }
        self.pos += 3;
        Ok(true)
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            while self.pos < self.input.len() && !self.starts_with("?>") {
                self.pos += 1;
            }
            if !self.starts_with("?>") {
                return Err(self.err("unterminated XML declaration"));
            }
            self.pos += 2;
        }
        self.skip_misc();
        Ok(())
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            match self.skip_comment() {
                Ok(true) => continue,
                _ => break,
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("names are ASCII")
            .to_owned())
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("attribute value is not UTF-8"))?;
                self.pos += 1;
                return unescape(raw).map_err(|m| XmlError {
                    offset: start,
                    message: m,
                });
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attrs.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Children until the matching end tag.
        loop {
            if self.starts_with("<!--") {
                self.skip_comment()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != element.name {
                    return Err(self.err(&format!(
                        "mismatched end tag: expected </{}>, found </{end_name}>",
                        element.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in end tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.children.push(Node::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("text is not UTF-8"))?;
                    let text = unescape(raw).map_err(|m| XmlError {
                        offset: start,
                        message: m,
                    })?;
                    if !text.trim().is_empty() {
                        element.children.push(Node::Text(text));
                    }
                }
                None => return Err(self.err("unterminated element")),
            }
        }
    }
}

fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity".to_owned())?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => return Err(format!("unsupported entity &{other};")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.attrs.is_empty());
        assert!(e.children.is_empty());
    }

    #[test]
    fn parse_attributes_and_text() {
        let e = parse(r#"<type name="city" fixed="100">hello</type>"#).unwrap();
        assert_eq!(e.get_attr("name"), Some("city"));
        assert_eq!(e.get_attr("fixed"), Some("100"));
        assert_eq!(e.get_attr("nope"), None);
        assert_eq!(e.text_content(), "hello");
    }

    #[test]
    fn parse_nested() {
        let doc = r#"
            <generator>
              <graph><nodes>500</nodes></graph>
              <workload size="30"/>
            </generator>"#;
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "generator");
        let graph = e.first("graph").unwrap();
        assert_eq!(graph.first("nodes").unwrap().text_content(), "500");
        assert_eq!(e.first("workload").unwrap().get_attr("size"), Some("30"));
    }

    #[test]
    fn parse_with_prolog_and_comments() {
        let doc =
            "<?xml version=\"1.0\"?>\n<!-- top --><root><!-- inner --><a/></root>\n<!-- after -->";
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "root");
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn entities_decode_and_encode() {
        let e = parse(r#"<a t="&lt;&amp;&gt;">x &quot;y&quot; &apos;z&apos;</a>"#).unwrap();
        assert_eq!(e.get_attr("t"), Some("<&>"));
        assert_eq!(e.text_content(), "x \"y\" 'z'");
        assert_eq!(escape("<&>\"'"), "&lt;&amp;&gt;&quot;&apos;");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a>&bogus;</a>").is_err());
        assert!(parse("<!-- unterminated <a/>").is_err());
    }

    #[test]
    fn error_offsets_point_into_input() {
        let err = parse("<a></b>").unwrap_err();
        assert!(err.offset <= 7);
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn pretty_print_round_trip() {
        let doc = Element::new("generator")
            .child(
                Element::new("graph")
                    .child(Element::new("nodes").text(500))
                    .child(Element::new("type").attr("name", "city").attr("fixed", 100)),
            )
            .child(Element::new("note").text("a < b & c"));
        let s = doc.to_pretty_string();
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = Element::new("a").child(Element::new("b").child(Element::new("c")));
        let s = doc.to_pretty_string();
        assert!(s.contains("\n  <b>"));
        assert!(s.contains("\n    <c/>"));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let e = parse("<a>\n   <b/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn mixed_quotes() {
        let e = parse(r#"<a x="1" y='2'/>"#).unwrap();
        assert_eq!(e.get_attr("x"), Some("1"));
        assert_eq!(e.get_attr("y"), Some("2"));
    }
}
