//! Mapping between XML documents and gMark configurations.
//!
//! The document layout mirrors the original gMark tool's configuration
//! files (Fig. 1: a graph configuration plus a query workload
//! configuration):
//!
//! ```xml
//! <generator>
//!   <graph>
//!     <nodes>10000</nodes>
//!     <types>
//!       <type name="researcher" proportion="0.5"/>
//!       <type name="city" fixed="100"/>
//!     </types>
//!     <predicates>
//!       <predicate name="authors" proportion="0.5"/>
//!     </predicates>
//!     <constraints>
//!       <constraint source="researcher" predicate="authors" target="paper">
//!         <indistribution type="gaussian" mu="3" sigma="1"/>
//!         <outdistribution type="zipfian" s="2.5"/>
//!       </constraint>
//!     </constraints>
//!   </graph>
//!   <workload size="30" seed="42">
//!     <arity>2</arity>
//!     <shape>chain</shape>
//!     <selectivity>constant</selectivity>
//!     <selectivity>linear</selectivity>
//!     <recursion probability="0.1"/>
//!     <rules min="1" max="1"/>
//!     <conjuncts min="1" max="3"/>
//!     <disjuncts min="1" max="2"/>
//!     <length min="1" max="3"/>
//!   </workload>
//! </generator>
//! ```
//!
//! Unspecified distributions are written as
//! `<indistribution type="nonspecified"/>` or simply omitted.

use crate::xml::{parse, Element, XmlError};
use gmark_core::schema::{Distribution, GraphConfig, Occurrence, SchemaBuilder};
use gmark_core::selectivity::SelectivityClass;
use gmark_core::workload::{QuerySize, Shape, WorkloadConfig};

/// A parsed configuration file: graph configuration plus optional workload
/// configuration.
#[derive(Debug, Clone)]
pub struct ParsedConfig {
    /// The graph configuration `G = (n, S)`.
    pub graph: GraphConfig,
    /// The workload configuration `Q`, when a `<workload>` element exists.
    pub workload: Option<WorkloadConfig>,
}

/// Errors raised while interpreting a configuration document.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The XML itself is malformed.
    Xml(XmlError),
    /// A required element or attribute is missing.
    Missing(String),
    /// A value failed to parse or validate.
    Invalid(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Xml(e) => write!(f, "{e}"),
            ConfigError::Missing(what) => write!(f, "missing {what}"),
            ConfigError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<XmlError> for ConfigError {
    fn from(e: XmlError) -> Self {
        ConfigError::Xml(e)
    }
}

fn missing(what: &str) -> ConfigError {
    ConfigError::Missing(what.to_owned())
}

fn invalid(what: &str) -> ConfigError {
    ConfigError::Invalid(what.to_owned())
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ConfigError> {
    s.trim()
        .parse()
        .map_err(|_| invalid(&format!("{what}: {s:?}")))
}

fn attr_num<T: std::str::FromStr>(e: &Element, key: &str) -> Result<T, ConfigError> {
    let raw = e
        .get_attr(key)
        .ok_or_else(|| missing(&format!("attribute {key} on <{}>", e.name)))?;
    parse_num(raw, &format!("attribute {key}"))
}

fn occurrence_of(e: &Element) -> Result<Option<Occurrence>, ConfigError> {
    match (e.get_attr("proportion"), e.get_attr("fixed")) {
        (Some(p), None) => Ok(Some(Occurrence::Proportion(parse_num(p, "proportion")?))),
        (None, Some(c)) => Ok(Some(Occurrence::Fixed(parse_num(c, "fixed")?))),
        (None, None) => Ok(None),
        (Some(_), Some(_)) => Err(invalid(&format!(
            "<{}> has both proportion and fixed",
            e.name
        ))),
    }
}

fn distribution_of(e: &Element) -> Result<Distribution, ConfigError> {
    let kind = e
        .get_attr("type")
        .ok_or_else(|| missing("distribution type attribute"))?;
    match kind {
        "uniform" => Ok(Distribution::uniform(
            attr_num(e, "min")?,
            attr_num(e, "max")?,
        )),
        "gaussian" => Ok(Distribution::gaussian(
            attr_num(e, "mu")?,
            attr_num(e, "sigma")?,
        )),
        "zipfian" => Ok(Distribution::zipfian(attr_num(e, "s")?)),
        "nonspecified" => Ok(Distribution::NonSpecified),
        other => Err(invalid(&format!("distribution type {other:?}"))),
    }
}

/// Parses a configuration document.
pub fn parse_config(input: &str) -> Result<ParsedConfig, ConfigError> {
    let root = parse(input)?;
    if root.name != "generator" {
        return Err(invalid(&format!(
            "root element <{}>, expected <generator>",
            root.name
        )));
    }
    let graph_el = root.first("graph").ok_or_else(|| missing("<graph>"))?;
    let n: u64 = graph_el
        .first("nodes")
        .map(|e| parse_num(&e.text_content(), "<nodes>"))
        .transpose()?
        .ok_or_else(|| missing("<nodes>"))?;

    let mut b = SchemaBuilder::new();
    let types_el = graph_el.first("types").ok_or_else(|| missing("<types>"))?;
    for t in types_el.elements_named("type") {
        let name = t.get_attr("name").ok_or_else(|| missing("type name"))?;
        let occ =
            occurrence_of(t)?.ok_or_else(|| missing(&format!("occurrence on type {name:?}")))?;
        b.node_type(name, occ);
    }
    if let Some(preds_el) = graph_el.first("predicates") {
        for p in preds_el.elements_named("predicate") {
            let name = p
                .get_attr("name")
                .ok_or_else(|| missing("predicate name"))?;
            b.predicate(name, occurrence_of(p)?);
        }
    }
    // The builder needs ids; re-resolve names through a temporary schema
    // is wasteful, so collect constraints first and translate by name.
    let mut pending = Vec::new();
    if let Some(cons_el) = graph_el.first("constraints") {
        for c in cons_el.elements_named("constraint") {
            let source = c
                .get_attr("source")
                .ok_or_else(|| missing("constraint source"))?;
            let predicate = c
                .get_attr("predicate")
                .ok_or_else(|| missing("constraint predicate"))?;
            let target = c
                .get_attr("target")
                .ok_or_else(|| missing("constraint target"))?;
            let din = c
                .first("indistribution")
                .map(distribution_of)
                .transpose()?
                .unwrap_or(Distribution::NonSpecified);
            let dout = c
                .first("outdistribution")
                .map(distribution_of)
                .transpose()?
                .unwrap_or(Distribution::NonSpecified);
            pending.push((
                source.to_owned(),
                predicate.to_owned(),
                target.to_owned(),
                din,
                dout,
            ));
        }
    }
    let schema_probe = b.build().map_err(|e| invalid(&format!("schema: {e}")))?;
    // Rebuild with constraints resolved against the probe's name tables.
    let mut b = SchemaBuilder::new();
    for t in schema_probe.types() {
        b.node_type(schema_probe.type_name(t), schema_probe.type_constraint(t));
    }
    for p in schema_probe.predicates() {
        b.predicate(
            schema_probe.predicate_name(p),
            schema_probe.predicate_constraint(p),
        );
    }
    for (source, predicate, target, din, dout) in pending {
        let s = schema_probe
            .type_by_name(&source)
            .ok_or_else(|| invalid(&format!("unknown source type {source:?}")))?;
        let p = schema_probe
            .predicate_by_name(&predicate)
            .ok_or_else(|| invalid(&format!("unknown predicate {predicate:?}")))?;
        let t = schema_probe
            .type_by_name(&target)
            .ok_or_else(|| invalid(&format!("unknown target type {target:?}")))?;
        b.edge(s, p, t, din, dout);
    }
    let schema = b.build().map_err(|e| invalid(&format!("schema: {e}")))?;
    let graph = GraphConfig::new(n, schema);

    let workload = root.first("workload").map(parse_workload).transpose()?;
    Ok(ParsedConfig { graph, workload })
}

fn parse_range(e: &Element) -> Result<(usize, usize), ConfigError> {
    Ok((attr_num(e, "min")?, attr_num(e, "max")?))
}

fn parse_workload(w: &Element) -> Result<WorkloadConfig, ConfigError> {
    let size: usize = attr_num(w, "size")?;
    let mut cfg = WorkloadConfig::new(size);
    if let Some(seed) = w.get_attr("seed") {
        cfg.seed = parse_num(seed, "seed")?;
    }
    let arities: Vec<usize> = w
        .elements_named("arity")
        .map(|e| parse_num(&e.text_content(), "<arity>"))
        .collect::<Result<_, _>>()?;
    if !arities.is_empty() {
        cfg.arity = arities;
    }
    let shapes: Vec<Shape> = w
        .elements_named("shape")
        .map(|e| {
            let t = e.text_content();
            Shape::parse(&t).ok_or_else(|| invalid(&format!("shape {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    if !shapes.is_empty() {
        cfg.shapes = shapes;
    }
    let sels: Vec<SelectivityClass> = w
        .elements_named("selectivity")
        .map(|e| {
            let t = e.text_content();
            SelectivityClass::parse(&t).ok_or_else(|| invalid(&format!("selectivity {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    if !sels.is_empty() {
        cfg.selectivities = sels;
    }
    if let Some(r) = w.first("recursion") {
        cfg.recursion_probability = attr_num(r, "probability")?;
    }
    if let Some(r) = w.first("rules") {
        cfg.rules = parse_range(r)?;
    }
    let mut size_t = QuerySize::default();
    if let Some(c) = w.first("conjuncts") {
        size_t.conjuncts = parse_range(c)?;
    }
    if let Some(d) = w.first("disjuncts") {
        size_t.disjuncts = parse_range(d)?;
    }
    if let Some(l) = w.first("length") {
        size_t.length = parse_range(l)?;
    }
    cfg.query_size = size_t;
    Ok(cfg)
}

/// Serializes a configuration back to XML.
pub fn write_config(graph: &GraphConfig, workload: Option<&WorkloadConfig>) -> String {
    let schema = &graph.schema;
    let mut types_el = Element::new("types");
    for t in schema.types() {
        let mut e = Element::new("type").attr("name", schema.type_name(t));
        e = match schema.type_constraint(t) {
            Occurrence::Fixed(c) => e.attr("fixed", c),
            Occurrence::Proportion(p) => e.attr("proportion", p),
        };
        types_el = types_el.child(e);
    }
    let mut preds_el = Element::new("predicates");
    for p in schema.predicates() {
        let mut e = Element::new("predicate").attr("name", schema.predicate_name(p));
        match schema.predicate_constraint(p) {
            Some(Occurrence::Fixed(c)) => e = e.attr("fixed", c),
            Some(Occurrence::Proportion(pr)) => e = e.attr("proportion", pr),
            None => {}
        }
        preds_el = preds_el.child(e);
    }
    let mut cons_el = Element::new("constraints");
    for c in schema.constraints() {
        let mut e = Element::new("constraint")
            .attr("source", schema.type_name(c.source))
            .attr("predicate", schema.predicate_name(c.predicate))
            .attr("target", schema.type_name(c.target));
        e = e.child(distribution_el("indistribution", &c.din));
        e = e.child(distribution_el("outdistribution", &c.dout));
        cons_el = cons_el.child(e);
    }
    let graph_el = Element::new("graph")
        .child(Element::new("nodes").text(graph.n))
        .child(types_el)
        .child(preds_el)
        .child(cons_el);

    let mut root = Element::new("generator").child(graph_el);
    if let Some(w) = workload {
        let mut w_el = Element::new("workload")
            .attr("size", w.size)
            .attr("seed", w.seed);
        for a in &w.arity {
            w_el = w_el.child(Element::new("arity").text(a));
        }
        for s in &w.shapes {
            w_el = w_el.child(Element::new("shape").text(s));
        }
        for s in &w.selectivities {
            w_el = w_el.child(Element::new("selectivity").text(s));
        }
        w_el = w_el.child(Element::new("recursion").attr("probability", w.recursion_probability));
        let range_el = |name: &str, (min, max): (usize, usize)| {
            Element::new(name).attr("min", min).attr("max", max)
        };
        w_el = w_el
            .child(range_el("rules", w.rules))
            .child(range_el("conjuncts", w.query_size.conjuncts))
            .child(range_el("disjuncts", w.query_size.disjuncts))
            .child(range_el("length", w.query_size.length));
        root = root.child(w_el);
    }
    root.to_pretty_string()
}

fn distribution_el(name: &str, d: &Distribution) -> Element {
    let e = Element::new(name);
    match *d {
        Distribution::Uniform { min, max } => {
            e.attr("type", "uniform").attr("min", min).attr("max", max)
        }
        Distribution::Gaussian { mu, sigma } => e
            .attr("type", "gaussian")
            .attr("mu", mu)
            .attr("sigma", sigma),
        Distribution::Zipfian { s } => e.attr("type", "zipfian").attr("s", s),
        Distribution::NonSpecified => e.attr("type", "nonspecified"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::usecases;

    const BIB_LIKE: &str = r#"
        <generator>
          <graph>
            <nodes>5000</nodes>
            <types>
              <type name="researcher" proportion="0.5"/>
              <type name="paper" proportion="0.3"/>
              <type name="conference" proportion="0.1"/>
              <type name="city" fixed="100"/>
            </types>
            <predicates>
              <predicate name="authors" proportion="0.5"/>
              <predicate name="publishedIn"/>
              <predicate name="heldIn"/>
            </predicates>
            <constraints>
              <constraint source="researcher" predicate="authors" target="paper">
                <indistribution type="gaussian" mu="3" sigma="1"/>
                <outdistribution type="zipfian" s="2.5"/>
              </constraint>
              <constraint source="paper" predicate="publishedIn" target="conference">
                <outdistribution type="uniform" min="1" max="1"/>
              </constraint>
              <constraint source="conference" predicate="heldIn" target="city">
                <indistribution type="zipfian" s="2.5"/>
                <outdistribution type="uniform" min="1" max="1"/>
              </constraint>
            </constraints>
          </graph>
          <workload size="30" seed="7">
            <arity>2</arity>
            <shape>chain</shape>
            <selectivity>constant</selectivity>
            <selectivity>linear</selectivity>
            <selectivity>quadratic</selectivity>
            <recursion probability="0.25"/>
            <conjuncts min="1" max="3"/>
            <disjuncts min="1" max="2"/>
            <length min="1" max="3"/>
          </workload>
        </generator>"#;

    #[test]
    fn parse_full_document() {
        let cfg = parse_config(BIB_LIKE).unwrap();
        assert_eq!(cfg.graph.n, 5000);
        let s = &cfg.graph.schema;
        assert_eq!(s.type_count(), 4);
        assert_eq!(s.predicate_count(), 3);
        assert_eq!(s.constraints().len(), 3);
        let city = s.type_by_name("city").unwrap();
        assert_eq!(s.type_constraint(city), Occurrence::Fixed(100));
        // publishedIn's unspecified in-distribution defaults correctly.
        let c = &s.constraints()[1];
        assert_eq!(c.din, Distribution::NonSpecified);
        assert_eq!(c.dout, Distribution::uniform(1, 1));

        let w = cfg.workload.unwrap();
        assert_eq!(w.size, 30);
        assert_eq!(w.seed, 7);
        assert_eq!(w.arity, vec![2]);
        assert_eq!(w.shapes, vec![Shape::Chain]);
        assert_eq!(w.selectivities.len(), 3);
        assert!((w.recursion_probability - 0.25).abs() < 1e-12);
        assert_eq!(w.query_size.conjuncts, (1, 3));
        assert_eq!(w.query_size.disjuncts, (1, 2));
    }

    #[test]
    fn parsed_config_generates() {
        let cfg = parse_config(BIB_LIKE).unwrap();
        let (graph, report) =
            gmark_core::generate_graph(&cfg.graph, &gmark_core::GeneratorOptions::with_seed(3));
        // Proportions sum to 0.9 plus 100 fixed city nodes: 4600 realized.
        assert_eq!(graph.node_count(), 4_600);
        assert!(report.total_edges > 0);
        let (w, _) =
            gmark_core::generate_workload(&cfg.graph.schema, &cfg.workload.unwrap()).unwrap();
        assert_eq!(w.queries.len(), 30);
    }

    #[test]
    fn round_trip_all_usecases() {
        for (name, schema) in usecases::all() {
            let graph = GraphConfig::new(12_345, schema);
            let workload = WorkloadConfig::new(42).with_seed(9);
            let xml = write_config(&graph, Some(&workload));
            let parsed = parse_config(&xml).unwrap_or_else(|e| panic!("{name}: {e}\n{xml}"));
            assert_eq!(parsed.graph, graph, "{name} graph round-trip");
            let w = parsed.workload.unwrap();
            assert_eq!(w.size, workload.size);
            assert_eq!(w.seed, workload.seed);
            assert_eq!(w.arity, workload.arity);
            assert_eq!(w.selectivities, workload.selectivities);
            assert_eq!(w.query_size, workload.query_size);
        }
    }

    #[test]
    fn missing_pieces_are_reported() {
        assert!(matches!(
            parse_config("<generator/>"),
            Err(ConfigError::Missing(_))
        ));
        let no_nodes = "<generator><graph><types/></graph></generator>";
        assert!(matches!(
            parse_config(no_nodes),
            Err(ConfigError::Missing(_))
        ));
        let bad_root = "<gen/>";
        assert!(matches!(
            parse_config(bad_root),
            Err(ConfigError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_references_are_reported() {
        let doc = r#"
          <generator><graph>
            <nodes>10</nodes>
            <types><type name="a" proportion="1.0"/></types>
            <predicates><predicate name="p"/></predicates>
            <constraints>
              <constraint source="a" predicate="p" target="ghost"/>
            </constraints>
          </graph></generator>"#;
        match parse_config(doc) {
            Err(ConfigError::Invalid(msg)) => assert!(msg.contains("ghost"), "{msg}"),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn invalid_values_are_reported() {
        let doc = r#"
          <generator><graph>
            <nodes>ten</nodes>
            <types><type name="a" proportion="1.0"/></types>
          </graph></generator>"#;
        assert!(matches!(parse_config(doc), Err(ConfigError::Invalid(_))));
        let bad_sel = r#"
          <generator><graph>
            <nodes>10</nodes>
            <types><type name="a" proportion="1.0"/></types>
          </graph>
          <workload size="5"><selectivity>cubic</selectivity></workload>
          </generator>"#;
        assert!(matches!(
            parse_config(bad_sel),
            Err(ConfigError::Invalid(_))
        ));
    }
}
