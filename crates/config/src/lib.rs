//! XML configuration files for gMark.
//!
//! The paper's Section 3.1 notes that "specifying all aforementioned
//! constraints as an input gMark graph configuration can be easily done via
//! a few lines of XML". This crate provides that input path:
//!
//! * [`xml`] — a hand-rolled parser and writer for the XML subset gMark
//!   configurations need (elements, attributes, text, comments, the five
//!   standard entities; no namespaces or DTDs) — no XML crate is available
//!   offline, and the format is small enough that owning the parser keeps
//!   the dependency surface minimal;
//! * [`config`] — the mapping between XML documents and
//!   [`gmark_core::GraphConfig`] / [`gmark_core::workload::WorkloadConfig`]
//!   values, both directions.
//!
//! Programs rarely need this crate directly: the `gmark` facade crate's
//! `run::RunPlan::from_xml` / `from_config_file` parse a document
//! straight into an executable plan, wrapping [`ConfigError`] (with the
//! offending path) into the unified `GmarkError`.

#![warn(missing_docs)]

pub mod config;
pub mod xml;

pub use config::{parse_config, write_config, ConfigError, ParsedConfig};
pub use xml::{Element, Node, XmlError};
