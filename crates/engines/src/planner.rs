//! The shared, statistics-driven query planner.
//!
//! gMark's generator knows everything a cost-based optimizer needs — the
//! schema, per-predicate cardinalities, and the selectivity algebra of
//! Section 5.2 — yet until this module the four engines ordered joins
//! greedily or not at all: the relational engine joined conjuncts in
//! declaration order, the navigational engine anchored at the first
//! conjunct with a bound source, the triple store picked
//! smallest-materialized-first, and the Datalog translation emitted rule
//! bodies verbatim. [`plan_query`] replaces all four ad-hoc orders with
//! one plan per query, computed **once** in
//! [`crate::matrix::evaluate_matrix`] and consumed by every engine cell.
//!
//! # Statistics inputs
//!
//! * per-symbol edge counts and distinct-source/distinct-target counts,
//!   from [`EvalContext::symbol_stats`] (a pure function of the graph,
//!   cached per predicate and pre-warmed by the matrix harness);
//! * the number of graph nodes;
//! * optionally, the schema's selectivity classes via
//!   [`gmark_core::selectivity::Estimator`] — used to classify starred
//!   subexpressions (a quadratic-class closure is costed at `n²`, the
//!   paper's Table 4 blow-up, while constant/linear-class closures stay
//!   near the base relation's size).
//!
//! # Cost model
//!
//! Estimated cardinalities are propagated bottom-up over the expression
//! structure with textbook independence assumptions, entirely in
//! **integer arithmetic** (`u128` intermediates, saturating) so plans are
//! bit-reproducible on every platform:
//!
//! * symbol `a±` — its edge count; distinct endpoints from the stats;
//! * concatenation `p₁·p₂` — `|p₁|·|p₂| / max(dtrg(p₁), dsrc(p₂))`
//!   (the classic equi-join estimate on the shared middle variable);
//! * disjunction — sum of the disjunct estimates, endpoints capped at `n`;
//! * star `p*` — `n` identity pairs plus a growth factor on the base
//!   estimate, capped at `n²`; with a schema, the selectivity class of
//!   the starred expression decides between the capped-linear and the
//!   full-quadratic estimate.
//!
//! Conjunct orders are chosen greedily per rule: start from the
//! smallest-estimate conjunct, then repeatedly pick the conjunct that
//! minimizes the estimated size of the joined intermediate (semi-join
//! when both variables are bound, fan-out division when one is, Cartesian
//! otherwise), preferring connected conjuncts and breaking every tie by
//! declaration index. Each step also records whether the conjunct should
//! be traversed from its target (`flip`) — the seed-driven navigational
//! engine's anchor choice.
//!
//! # Determinism
//!
//! A [`QueryPlan`] is a pure function of `(graph, schema, query)`: no
//! wall clock, no hashing iteration order, no floats. The matrix harness
//! computes all plans before any cell clock starts, so planner-on eval
//! artifacts stay byte-identical at every thread count — the same
//! contract the rest of the pipeline keeps.

use crate::context::EvalContext;
use gmark_core::query::{PathExpr, Query, RegularExpr, Rule, Symbol, Var};
use gmark_core::schema::Schema;
use gmark_core::selectivity::Estimator;

/// How much a capped-linear Kleene closure is assumed to expand its base
/// relation. A closure reaches everything within any path length, so the
/// base estimate understates it badly; this factor keeps starred
/// conjuncts ordered *after* comparable non-starred ones without
/// declaring every closure quadratic.
const STAR_GROWTH: u128 = 8;

/// One conjunct pick of a rule's join order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConjunctStep {
    /// Index into the rule's body (declaration position).
    pub conjunct: usize,
    /// Traverse the conjunct from its target variable: the seed-driven
    /// navigational engine reverses the expression and walks backwards
    /// when only the target is bound at this point of the order.
    pub flip: bool,
    /// Estimated pair cardinality of the conjunct's expression.
    pub est_pairs: u64,
}

/// The planned evaluation order of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlan {
    /// Conjunct picks, in execution order (a permutation of the body).
    pub steps: Vec<ConjunctStep>,
    /// Estimated distinct projected rows this rule contributes.
    pub est_rows: u64,
}

/// A full query plan: per-rule conjunct orders plus the estimated answer
/// cardinality, produced by [`plan_query`] and shared by all four engines
/// (the estimate is what `eval.txt` prints next to each cell's actual
/// count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// One plan per rule, in rule order.
    pub rules: Vec<RulePlan>,
    /// Estimated distinct answer count of the whole query (sum over
    /// rules, an upper bound that ignores cross-rule overlap).
    pub est_answers: u64,
}

impl QueryPlan {
    /// The planned `(conjunct, flip)` order of rule `ri`, validated to be
    /// a permutation of a `body_len`-conjunct body. `None` when the plan
    /// does not cover the rule or does not fit it (defensive: a stale or
    /// mismatched plan makes callers fall back to their legacy order
    /// instead of evaluating the wrong conjuncts).
    pub fn rule_order(&self, ri: usize, body_len: usize) -> Option<Vec<(usize, bool)>> {
        let rp = self.rules.get(ri)?;
        if rp.steps.len() != body_len {
            return None;
        }
        let mut seen = vec![false; body_len];
        for s in &rp.steps {
            if *seen.get(s.conjunct)? {
                return None;
            }
            seen[s.conjunct] = true;
        }
        Some(rp.steps.iter().map(|s| (s.conjunct, s.flip)).collect())
    }
}

/// Bottom-up cardinality estimate of one expression.
#[derive(Debug, Clone, Copy)]
struct ExprEst {
    /// Estimated result pairs.
    pairs: u128,
    /// Estimated distinct source nodes.
    dsrc: u128,
    /// Estimated distinct target nodes.
    dtrg: u128,
}

/// Plans one query against a graph's statistics (and, when available,
/// the schema's selectivity classes). Pure and deterministic — see the
/// module docs.
pub fn plan_query(ctx: &EvalContext<'_>, schema: Option<&Schema>, query: &Query) -> QueryPlan {
    let n = ctx.view().node_count() as u128;
    let rules: Vec<RulePlan> = query
        .rules
        .iter()
        .map(|rule| plan_rule(ctx, schema, rule, n))
        .collect();
    let est_answers = rules
        .iter()
        .fold(0u128, |acc, rp| acc.saturating_add(rp.est_rows as u128));
    QueryPlan {
        rules,
        est_answers: clamp_u64(est_answers),
    }
}

fn plan_rule(ctx: &EvalContext<'_>, schema: Option<&Schema>, rule: &Rule, n: u128) -> RulePlan {
    let len = rule.body.len();
    let ests: Vec<ExprEst> = rule
        .body
        .iter()
        .map(|c| expr_est(ctx, schema, &c.expr, n))
        .collect();
    let n2 = n.saturating_mul(n).max(1);

    let mut used = vec![false; len];
    let mut bound: Vec<Var> = Vec::new();
    let mut steps = Vec::with_capacity(len);
    let mut rows: u128 = 0;

    for step in 0..len {
        // Candidate cost: the estimated intermediate size after joining
        // the conjunct into the current table. Connectivity dominates the
        // pick — a cartesian product is taken only when no remaining
        // conjunct shares a variable with the table (matching the
        // engines' own historical heuristics, and keeping seed-driven
        // traversals seeded): an attractive-looking cross product is
        // still a cross product.
        let mut best: Option<(bool, u128, usize, bool)> = None; // (disconnected, rows, idx, flip)
        for (i, est) in ests.iter().enumerate() {
            if used[i] {
                continue;
            }
            let c = &rule.body[i];
            let sb = bound.contains(&c.src);
            let tb = bound.contains(&c.trg);
            let (next_rows, flip, connected) = if step == 0 {
                (est.pairs, false, true)
            } else if sb && tb {
                // Semi-join: filters the table, never grows it.
                let sel = rows.saturating_mul(est.pairs) / n2;
                (sel.min(rows).max(1), false, true)
            } else if sb {
                let fan = rows.saturating_mul(est.pairs) / est.dsrc.max(1);
                (fan.max(1), false, true)
            } else if tb {
                let fan = rows.saturating_mul(est.pairs) / est.dtrg.max(1);
                (fan.max(1), true, true)
            } else {
                (rows.saturating_mul(est.pairs).max(1), false, false)
            };
            let key = (!connected, next_rows, i, flip);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, next_rows, idx, flip)) = best else {
            break; // empty body
        };
        used[idx] = true;
        rows = next_rows;
        for v in [rule.body[idx].src, rule.body[idx].trg] {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        steps.push(ConjunctStep {
            conjunct: idx,
            flip,
            est_pairs: clamp_u64(ests[idx].pairs),
        });
    }

    // Distinct projected rows: bounded by the joined estimate and by
    // n^arity (a Boolean head has at most one answer).
    let mut cap: u128 = 1;
    for _ in 0..rule.head.len() {
        cap = cap.saturating_mul(n.max(1));
    }
    RulePlan {
        steps,
        est_rows: clamp_u64(rows.min(cap)),
    }
}

/// Estimate of one regular expression: disjuncts are summed, a star is
/// classified (schema) or capped (graph-only) — see the module docs.
///
/// When the expression sits in the sub-expression result cache, the
/// statistical model is short-circuited with the **exact** cardinality
/// ([`EvalContext::cached_expr_len`]): the cache is filled during the
/// same warm-up phase, before any plan is computed, so this stays a pure
/// function of `(graph, fill list, query)` and plans remain
/// thread-count-invariant. Distinct-endpoint counts keep their capped
/// statistical estimates (the cache does not record them).
fn expr_est(
    ctx: &EvalContext<'_>,
    schema: Option<&Schema>,
    expr: &RegularExpr,
    n: u128,
) -> ExprEst {
    if let Some(exact) = ctx.cached_expr_len(expr) {
        let exact = exact as u128;
        return ExprEst {
            pairs: exact,
            dsrc: exact.min(n),
            dtrg: exact.min(n),
        };
    }
    let mut pairs: u128 = 0;
    let mut dsrc: u128 = 0;
    let mut dtrg: u128 = 0;
    for path in &expr.disjuncts {
        let p = path_est(ctx, path, n);
        pairs = pairs.saturating_add(p.pairs);
        dsrc = dsrc.saturating_add(p.dsrc);
        dtrg = dtrg.saturating_add(p.dtrg);
    }
    dsrc = dsrc.min(n);
    dtrg = dtrg.min(n);
    if expr.starred {
        let n2 = n.saturating_mul(n);
        let quadratic = schema.is_some_and(|s| {
            let classes = Estimator::new(s).expr_classes(expr);
            classes.values().map(|t| t.alpha()).max() == Some(2)
        });
        pairs = if quadratic {
            n2
        } else {
            n.saturating_add(pairs.saturating_mul(STAR_GROWTH)).min(n2)
        };
        // The closure contains ε: every node is a source and a target.
        dsrc = n;
        dtrg = n;
    }
    ExprEst { pairs, dsrc, dtrg }
}

/// Estimate of one concatenation path (the equi-join chain rule).
fn path_est(ctx: &EvalContext<'_>, path: &PathExpr, n: u128) -> ExprEst {
    let Some((&first, rest)) = path.0.split_first() else {
        // ε: the identity relation.
        return ExprEst {
            pairs: n,
            dsrc: n,
            dtrg: n,
        };
    };
    let mut acc = sym_est(ctx, first);
    for &sym in rest {
        let next = sym_est(ctx, sym);
        let key = acc.dtrg.max(next.dsrc).max(1);
        let pairs = acc.pairs.saturating_mul(next.pairs) / key;
        acc = ExprEst {
            pairs,
            dsrc: acc.dsrc.min(pairs),
            dtrg: next.dtrg.min(pairs),
        };
    }
    acc
}

fn sym_est(ctx: &EvalContext<'_>, sym: Symbol) -> ExprEst {
    let st = ctx.symbol_stats(sym);
    ExprEst {
        pairs: st.edges as u128,
        dsrc: st.distinct_src as u128,
        dtrg: st.distinct_trg as u128,
    }
}

fn clamp_u64(v: u128) -> u64 {
    v.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::Conjunct;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    /// Predicate 0 is dense (8 edges), predicate 1 sparse (2 edges).
    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[6]), 2);
        for (s, t) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 1),
            (4, 2),
            (5, 0),
            (0, 3),
            (1, 4),
        ] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn chain(exprs: Vec<RegularExpr>) -> Query {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    }

    #[test]
    fn single_symbol_estimate_is_the_edge_count() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let q = chain(vec![RegularExpr::symbol(sym(0))]);
        let plan = plan_query(&ctx, None, &q);
        assert_eq!(plan.rules.len(), 1);
        assert_eq!(plan.rules[0].steps.len(), 1);
        assert_eq!(plan.rules[0].steps[0].est_pairs, 8);
        assert_eq!(plan.est_answers, 8);
    }

    #[test]
    fn selective_conjunct_leads_the_order() {
        // (?x0, p0, ?x1), (?x1, p1, ?x2): the sparse p1 conjunct (2
        // edges) must be picked first; p0 then anchors at its *target*
        // (x1 is bound), so it is flipped.
        let g = graph();
        let ctx = EvalContext::new(&g);
        let q = chain(vec![
            RegularExpr::symbol(sym(0)),
            RegularExpr::symbol(sym(1)),
        ]);
        let plan = plan_query(&ctx, None, &q);
        let steps = &plan.rules[0].steps;
        assert_eq!(steps[0].conjunct, 1, "sparse conjunct first: {steps:?}");
        assert!(!steps[0].flip);
        assert_eq!(steps[1].conjunct, 0);
        assert!(steps[1].flip, "dense conjunct anchors at bound target");
    }

    #[test]
    fn star_is_costed_larger_than_its_base() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let base = chain(vec![RegularExpr::symbol(sym(0))]);
        let star = chain(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]);
        let pb = plan_query(&ctx, None, &base);
        let ps = plan_query(&ctx, None, &star);
        assert!(
            ps.rules[0].steps[0].est_pairs > pb.rules[0].steps[0].est_pairs,
            "closure must be estimated above its base"
        );
        // Estimates never exceed n² for a binary head.
        assert!(ps.est_answers <= 36);
    }

    #[test]
    fn boolean_head_estimates_at_most_one_answer() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let plan = plan_query(&ctx, None, &q);
        assert_eq!(plan.est_answers, 1);
    }

    #[test]
    fn plans_are_deterministic_and_cover_every_conjunct() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let q = chain(vec![
            RegularExpr::symbol(sym(0)),
            RegularExpr::star(vec![PathExpr(vec![sym(0)])]),
            RegularExpr::symbol(sym(1)),
        ]);
        let a = plan_query(&ctx, None, &q);
        let b = plan_query(&ctx, None, &q);
        assert_eq!(a, b, "planning must be a pure function");
        let mut picked: Vec<usize> = a.rules[0].steps.iter().map(|s| s.conjunct).collect();
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 1, 2], "order is a permutation of the body");
    }

    #[test]
    fn disconnected_groups_start_with_their_smallest_member() {
        // Two components: {x0 -p0- x1} and {x2 -p1- x3}. The sparse p1
        // conjunct seeds the order; the p0 conjunct then joins as a
        // Cartesian component.
        let q = Query::single(Rule {
            head: vec![Var(0), Var(3)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(2),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(3),
                },
            ],
        })
        .unwrap();
        let g = graph();
        let ctx = EvalContext::new(&g);
        let plan = plan_query(&ctx, None, &q);
        let order: Vec<usize> = plan.rules[0].steps.iter().map(|s| s.conjunct).collect();
        assert_eq!(order, vec![1, 0], "smallest conjunct seeds the order");
    }

    #[test]
    fn rule_order_accessor_round_trips() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let q = chain(vec![
            RegularExpr::symbol(sym(0)),
            RegularExpr::symbol(sym(1)),
        ]);
        let plan = plan_query(&ctx, None, &q);
        let order = plan.rule_order(0, 2).unwrap();
        assert_eq!(order.len(), 2);
        assert!(plan.rule_order(1, 2).is_none(), "no such rule");
        assert!(plan.rule_order(0, 3).is_none(), "wrong body length");
    }
}
