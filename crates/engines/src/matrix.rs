//! The evaluation matrix harness: every (query × engine) cell of a
//! Section 7 experiment, fanned over worker threads, reassembled into a
//! deterministic report.
//!
//! [`evaluate_matrix`] is to evaluation what the parallel generators are
//! to the graph and workload stages: worker threads claim cell indices
//! from a shared counter, each cell evaluates one query on one engine
//! under a **fresh per-cell [`Budget`]** (late cells are not charged for
//! early ones), and the results are reassembled in ascending
//! `(query index, engine position)` order. Because every engine is a
//! deterministic function of `(graph, query, budget caps)`, the resulting
//! [`EvalReport`] — answer-set cardinalities and failure outcomes — is
//! **bit-identical at every thread count** whenever cell outcomes do not
//! depend on the wall clock: with no time limit, with a generous limit no
//! cell approaches, or with an already-expired one (the regimes the
//! determinism tests pin). Wall-clock measurements are still taken per
//! cell, but they live outside the deterministic rendering — see
//! [`EvalCell::time_bucket`] and [`EvalReport::render_times`].

use crate::context::EvalContext;
use crate::planner::{plan_query, QueryPlan};
use crate::{
    Answers, Budget, DatalogEngine, Engine, EvalError, NavigationalEngine, RelationalEngine,
    TripleStoreEngine,
};
use gmark_core::query::Query;
use gmark_core::schema::Schema;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One of the four in-repo engines, named by the paper's system letter.
/// The enum form (rather than trait objects) is what the matrix harness,
/// the `--engines` CLI flag, and the reports share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineKind {
    /// `P` — the relational engine (PostgreSQL-style).
    Relational,
    /// `G` — the navigational engine (openCypher-style, degraded queries).
    Navigational,
    /// `S` — the triple-store engine (SPARQL-style).
    TripleStore,
    /// `D` — the Datalog engine.
    Datalog,
}

impl EngineKind {
    /// All four engines in the paper's `P`/`G`/`S`/`D` report order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Relational,
        EngineKind::Navigational,
        EngineKind::TripleStore,
        EngineKind::Datalog,
    ];

    /// The paper's system letter.
    pub fn letter(self) -> char {
        match self {
            EngineKind::Relational => 'P',
            EngineKind::Navigational => 'G',
            EngineKind::TripleStore => 'S',
            EngineKind::Datalog => 'D',
        }
    }

    /// Letter + architecture name, matching [`Engine::name`].
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Relational => RelationalEngine.name(),
            EngineKind::Navigational => NavigationalEngine.name(),
            EngineKind::TripleStore => TripleStoreEngine.name(),
            EngineKind::Datalog => DatalogEngine.name(),
        }
    }

    /// Parses a system letter (case-insensitive).
    pub fn from_letter(letter: char) -> Option<EngineKind> {
        match letter.to_ascii_uppercase() {
            'P' => Some(EngineKind::Relational),
            'G' => Some(EngineKind::Navigational),
            'S' => Some(EngineKind::TripleStore),
            'D' => Some(EngineKind::Datalog),
            _ => None,
        }
    }

    /// Parses a comma-separated engine selection like `P,S,G,D` (the CLI's
    /// `--engines` value). Order is preserved — it becomes the report's
    /// column order — duplicates are rejected, and the list must select at
    /// least one engine.
    pub fn parse_list(list: &str) -> Result<Vec<EngineKind>, String> {
        let mut engines = Vec::new();
        for part in list.split(',') {
            let part = part.trim();
            let mut chars = part.chars();
            let (Some(letter), None) = (chars.next(), chars.next()) else {
                return Err(format!(
                    "expected a single engine letter (P, G, S, or D), got {part:?}"
                ));
            };
            let kind = EngineKind::from_letter(letter)
                .ok_or_else(|| format!("unknown engine letter {letter:?} (use P, G, S, or D)"))?;
            if engines.contains(&kind) {
                return Err(format!("engine {letter} selected twice"));
            }
            engines.push(kind);
        }
        if engines.is_empty() {
            return Err("empty engine selection".to_owned());
        }
        Ok(engines)
    }

    /// Evaluates one query through this engine against a shared context.
    pub fn evaluate(
        self,
        ctx: &EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        self.evaluate_with(ctx, query, None, budget)
    }

    /// Like [`EngineKind::evaluate`], routed through
    /// [`Engine::evaluate_planned`] so a shared [`QueryPlan`] can order the
    /// engine's joins. Plans change *how* an engine evaluates, never *what*
    /// it answers.
    pub fn evaluate_with(
        self,
        ctx: &EvalContext<'_>,
        query: &Query,
        plan: Option<&QueryPlan>,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        match self {
            EngineKind::Relational => RelationalEngine.evaluate_planned(ctx, query, plan, budget),
            EngineKind::Navigational => {
                NavigationalEngine.evaluate_planned(ctx, query, plan, budget)
            }
            EngineKind::TripleStore => TripleStoreEngine.evaluate_planned(ctx, query, plan, budget),
            EngineKind::Datalog => DatalogEngine.evaluate_planned(ctx, query, plan, budget),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cell resource limits. Unlike a bare [`Budget`] — whose deadline is
/// fixed when it is constructed — this is a budget *recipe*: the harness
/// starts a fresh [`Budget`] for every cell, so a cell evaluated late in
/// the run gets the same time allowance as the first one.
#[derive(Debug, Clone, Copy)]
pub struct CellBudget {
    /// Wall-clock allowance per cell; `None` = no time limit (the fully
    /// deterministic regime).
    pub timeout: Option<Duration>,
    /// Maximum tuples any intermediate or final result may hold
    /// (deterministic by construction).
    pub max_tuples: usize,
}

impl Default for CellBudget {
    fn default() -> Self {
        CellBudget {
            timeout: None,
            max_tuples: Budget::default().max_tuples,
        }
    }
}

impl CellBudget {
    /// Starts a fresh budget whose clock begins now.
    pub fn start(&self) -> Budget {
        Budget::with_limits(self.timeout, self.max_tuples)
    }
}

/// Execution knobs of [`evaluate_matrix`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixOptions {
    /// Worker threads; `0` auto-detects via
    /// [`std::thread::available_parallelism`]. The report's deterministic
    /// content never depends on this value.
    pub threads: usize,
    /// Extra timing runs per successful cell, following the Section 7.1
    /// protocol: the cold run decides the outcome, the warm runs are
    /// averaged (dropping the fastest and slowest) into
    /// [`EvalCell::seconds`]. `0` keeps the cold run's own time.
    pub warm_runs: usize,
    /// Whether to run the statistics planner ([`plan_query`]) once per
    /// query and hand the resulting [`QueryPlan`] to every engine. Plans
    /// are pure functions of `(schema, graph, query)`, so enabling them
    /// preserves the thread-count determinism guarantee; disabling them
    /// reverts every engine to its historical declaration-order /
    /// per-engine-heuristic behavior.
    pub plan: bool,
    /// Byte budget (MiB) of the cross-cell sub-expression result cache
    /// ([`EvalContext::fill_expr_cache`]); `0` disables it. The cache is
    /// filled single-threaded during warm-up — before any cell clock
    /// starts — and cells only read it, so enabling it preserves the
    /// thread-count determinism guarantee (see the context module docs).
    pub cache_mb: usize,
}

impl MatrixOptions {
    /// Default cache budget: 64 MiB of pair columns.
    pub const DEFAULT_CACHE_MB: usize = 64;
}

impl Default for MatrixOptions {
    fn default() -> Self {
        MatrixOptions {
            threads: 1,
            warm_runs: 0,
            plan: true,
            cache_mb: MatrixOptions::DEFAULT_CACHE_MB,
        }
    }
}

/// What one (query × engine) cell produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The engine finished: answer-set arity and distinct-tuple count (the
    /// paper's `count(distinct ...)` measurement).
    Answers {
        /// Tuple width.
        arity: usize,
        /// Distinct answer tuples.
        count: u64,
    },
    /// The engine failed — the paper's `-` cells, with the typed reason.
    Failed(EvalError),
}

impl CellOutcome {
    /// Whether the cell completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Answers { .. })
    }

    /// The deterministic cell label for reports: the tuple count, or a
    /// short failure word.
    pub fn label(&self) -> String {
        match self {
            CellOutcome::Answers { count, .. } => count.to_string(),
            CellOutcome::Failed(EvalError::Timeout) => "timeout".to_owned(),
            CellOutcome::Failed(EvalError::TooLarge(_)) => "too-large".to_owned(),
            CellOutcome::Failed(EvalError::Unsupported(_)) => "unsupported".to_owned(),
            CellOutcome::Failed(EvalError::Internal(_)) => "error".to_owned(),
        }
    }
}

/// One evaluated cell of the matrix.
#[derive(Debug, Clone)]
pub struct EvalCell {
    /// Query index (position in the slice passed to [`evaluate_matrix`]).
    pub query: usize,
    /// The engine that evaluated it.
    pub engine: EngineKind,
    /// What happened.
    pub outcome: CellOutcome,
    /// The planner's estimated answer cardinality for the cell's query
    /// ([`QueryPlan::est_answers`]), when planning was enabled. Recorded
    /// next to the actual count so reports can show estimated-vs-actual
    /// accounting; `None` when the matrix ran with `plan: false`.
    pub estimate: Option<u64>,
    /// Measured wall time (warm-run mean when warm runs were requested).
    /// Nondeterministic by nature — it never enters
    /// [`EvalReport::render`]; use [`EvalCell::time_bucket`] for the
    /// coarse, human-oriented view.
    pub seconds: f64,
}

impl EvalCell {
    /// The deterministic cell label: `est~count` for a completed cell with
    /// a planner estimate (estimated cardinality before the `~`, actual
    /// after), otherwise [`CellOutcome::label`].
    pub fn label(&self) -> String {
        match (&self.outcome, self.estimate) {
            (CellOutcome::Answers { count, .. }, Some(est)) => format!("{est}~{count}"),
            _ => self.outcome.label(),
        }
    }

    /// The cell's wall time bucketed into decades — a deterministic
    /// *function* of the measured time (the measurement itself still
    /// varies run to run, which is why buckets appear only in
    /// [`EvalReport::render_times`], outside the byte-compared report).
    pub fn time_bucket(&self) -> &'static str {
        time_bucket(Duration::from_secs_f64(self.seconds.max(0.0)))
    }
}

/// Maps a duration to its decade bucket. Total over all durations.
pub fn time_bucket(d: Duration) -> &'static str {
    let micros = d.as_micros();
    match micros {
        0..1_000 => "<1ms",
        1_000..10_000 => "1-10ms",
        10_000..100_000 => "10-100ms",
        100_000..1_000_000 => "0.1-1s",
        1_000_000..10_000_000 => "1-10s",
        _ => ">=10s",
    }
}

/// Aggregate cell outcomes of a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalTotals {
    /// Total cells.
    pub cells: usize,
    /// Completed cells.
    pub ok: usize,
    /// Cells that exhausted the wall-clock budget.
    pub timeout: usize,
    /// Cells that exceeded the tuple budget.
    pub too_large: usize,
    /// Cells the engine could not express.
    pub unsupported: usize,
    /// Cells that hit an engine invariant violation.
    pub internal: usize,
}

/// Estimated-vs-actual planner accounting over a report's completed
/// cells — see [`EvalReport::plan_quality`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanQuality {
    /// Completed cells carrying a planner estimate.
    pub estimated_ok: usize,
    /// Of those, cells whose estimate is within a factor of 10 of the
    /// actual count (both directions; two empty results count as within).
    pub within_10x: usize,
    /// Sum of the estimates over the counted cells.
    pub est_total: u128,
    /// Sum of the actual counts over the counted cells.
    pub actual_total: u128,
}

/// The assembled result of one [`evaluate_matrix`] run: cells in ascending
/// `(query index, engine position)` order.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// The engine columns, in selection order.
    pub engines: Vec<EngineKind>,
    /// Number of query rows.
    pub queries: usize,
    /// All cells, row-major: `cells[q * engines.len() + e]`.
    pub cells: Vec<EvalCell>,
    /// Contents and hit accounting of the sub-expression cache, when one
    /// was enabled for this run (`None` with `cache_mb: 0`). Deterministic
    /// at every thread count — see [`crate::context::EvalCacheStats`].
    pub cache: Option<crate::context::EvalCacheStats>,
}

impl EvalReport {
    /// The cell of one (query, engine) coordinate, if both are in range.
    pub fn cell(&self, query: usize, engine: EngineKind) -> Option<&EvalCell> {
        let e = self.engines.iter().position(|&k| k == engine)?;
        self.cells.get(query * self.engines.len() + e)
    }

    /// Aggregated outcomes.
    pub fn totals(&self) -> EvalTotals {
        let mut t = EvalTotals {
            cells: self.cells.len(),
            ..EvalTotals::default()
        };
        for cell in &self.cells {
            match &cell.outcome {
                CellOutcome::Answers { .. } => t.ok += 1,
                CellOutcome::Failed(EvalError::Timeout) => t.timeout += 1,
                CellOutcome::Failed(EvalError::TooLarge(_)) => t.too_large += 1,
                CellOutcome::Failed(EvalError::Unsupported(_)) => t.unsupported += 1,
                CellOutcome::Failed(EvalError::Internal(_)) => t.internal += 1,
            }
        }
        t
    }

    /// Renders the deterministic outcome matrix: one row per query, one
    /// column per engine, each cell its [`CellOutcome::label`], plus a
    /// totals footer. Bit-identical at every thread count (no wall-clock
    /// content — see the module docs).
    pub fn render(&self) -> String {
        self.render_with_labels(&[])
    }

    /// Like [`EvalReport::render`], with a trailing per-query annotation
    /// (e.g. the workload's class/shape metadata) after each row.
    /// Annotations beyond the query count are ignored; missing ones render
    /// nothing.
    pub fn render_with_labels(&self, labels: &[String]) -> String {
        const W: usize = 12;
        let mut out = String::new();
        let _ = write!(out, "{:<8}", "query");
        for kind in &self.engines {
            let _ = write!(out, " {:>W$}", kind.letter());
        }
        out.push('\n');
        for q in 0..self.queries {
            let _ = write!(out, "{:<8}", format!("q{q}"));
            for e in 0..self.engines.len() {
                let label = self.cells[q * self.engines.len() + e].label();
                let _ = write!(out, " {label:>W$}");
            }
            if let Some(label) = labels.get(q) {
                let _ = write!(out, "  {label}");
            }
            out.push('\n');
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "cells: {} ok, {} timeout, {} too-large, {} unsupported, {} error ({} total)",
            t.ok, t.timeout, t.too_large, t.unsupported, t.internal, t.cells
        );
        if let Some(q) = self.plan_quality() {
            let _ = writeln!(
                out,
                "plan: {}/{} estimates within 10x of actual (est total {}, actual total {})",
                q.within_10x, q.estimated_ok, q.est_total, q.actual_total
            );
        }
        out
    }

    /// Estimated-vs-actual aggregates over the completed cells that carry
    /// a planner estimate; `None` when the matrix ran without planning.
    /// Integer arithmetic throughout — the numbers are part of the
    /// byte-compared report.
    pub fn plan_quality(&self) -> Option<PlanQuality> {
        if !self.cells.iter().any(|c| c.estimate.is_some()) {
            return None;
        }
        let mut q = PlanQuality::default();
        for cell in &self.cells {
            let (CellOutcome::Answers { count, .. }, Some(est)) = (&cell.outcome, cell.estimate)
            else {
                continue;
            };
            q.estimated_ok += 1;
            q.est_total += u128::from(est);
            q.actual_total += u128::from(*count);
            let (e, c) = (u128::from(est), u128::from(*count));
            if e <= (c * 10).max(1) && c <= (e * 10).max(1) {
                q.within_10x += 1;
            }
        }
        Some(q)
    }

    /// Renders the measured wall times as decade buckets (failures show
    /// their outcome label). Informative, **not** part of the determinism
    /// contract — keep it out of byte-compared artifacts.
    pub fn render_times(&self) -> String {
        const W: usize = 12;
        let mut out = String::new();
        let _ = write!(out, "{:<8}", "query");
        for kind in &self.engines {
            let _ = write!(out, " {:>W$}", kind.letter());
        }
        out.push('\n');
        for q in 0..self.queries {
            let _ = write!(out, "{:<8}", format!("q{q}"));
            for e in 0..self.engines.len() {
                let cell = &self.cells[q * self.engines.len() + e];
                let shown = if cell.outcome.is_ok() {
                    cell.time_bucket().to_owned()
                } else {
                    cell.outcome.label()
                };
                let _ = write!(out, " {shown:>W$}");
            }
            out.push('\n');
        }
        out
    }
}

/// Evaluates every (query × engine) cell of a workload, in parallel.
///
/// Worker threads claim cell indices from a shared counter; each cell gets
/// a fresh budget from `budget` ([`CellBudget::start`]) and runs
/// [`EngineKind::evaluate`] against the shared context (optionally
/// repeated `warm_runs` times for the Section 7.1 timing protocol).
/// Results are reassembled in ascending `(query index, engine position)`
/// order, so the report layout is independent of scheduling.
pub fn evaluate_matrix(
    ctx: &EvalContext<'_>,
    queries: &[&Query],
    engines: &[EngineKind],
    budget: &CellBudget,
    options: &MatrixOptions,
) -> EvalReport {
    evaluate_matrix_with_schema(ctx, None, queries, engines, budget, options)
}

/// [`evaluate_matrix`] with the generating schema available to the
/// planner. The schema sharpens the cost model's star estimates (the
/// selectivity algebra decides which transitive closures are quadratic);
/// without it the planner still runs on graph statistics alone. When
/// `options.plan` is false the schema is unused.
pub fn evaluate_matrix_with_schema(
    ctx: &EvalContext<'_>,
    schema: Option<&Schema>,
    queries: &[&Query],
    engines: &[EngineKind],
    budget: &CellBudget,
    options: &MatrixOptions,
) -> EvalReport {
    let cell_count = queries.len() * engines.len();
    let threads = resolve_threads(options.threads).min(cell_count.max(1));
    warm_context(ctx, queries, engines, budget, options);

    // One plan per query, shared by every engine column. Planning happens
    // before any cell clock starts (it is context warm-up work, not query
    // evaluation) and is a pure function of `(schema, graph, query)`, so
    // it cannot perturb the thread-count determinism guarantee.
    let plans: Option<Vec<QueryPlan>> = options
        .plan
        .then(|| queries.iter().map(|q| plan_query(ctx, schema, q)).collect());
    let plans = plans.as_deref();

    let cells: Vec<EvalCell> = if threads <= 1 {
        (0..cell_count)
            .map(|ci| run_cell(ctx, queries, engines, budget, options.warm_runs, plans, ci))
            .collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut indexed: Vec<(usize, EvalCell)> = std::thread::scope(|scope| {
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let ci = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if ci >= cell_count {
                                break;
                            }
                            let cell = run_cell(
                                ctx,
                                queries,
                                engines,
                                budget,
                                options.warm_runs,
                                plans,
                                ci,
                            );
                            out.push((ci, cell));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("matrix worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(ci, _)| *ci);
        indexed.into_iter().map(|(_, cell)| cell).collect()
    };

    EvalReport {
        engines: engines.to_vec(),
        queries: queries.len(),
        cells,
        cache: ctx.expr_cache_stats(),
    }
}

/// Initializes the context's shared indexes the selected engines will
/// need **before any cell clock starts**. Without this, whichever cell
/// touches a lazy slot first (the Datalog EDB, a symbol relation) is
/// billed for one-time context construction — inflating its timing and,
/// under a finite per-cell deadline, making its outcome depend on
/// scheduling. Warming is idempotent; only the symbols the workload
/// actually mentions are materialized, and unselected engines' indexes
/// stay lazy.
///
/// When `options.cache_mb > 0` this is also where the sub-expression
/// result cache is filled — single-threaded, deterministic enumeration
/// (queries in order, rule by rule, conjunct by conjunct, then the
/// cypher-degraded forms if the navigational engine is selected), one
/// fresh cell budget per entry. Cells only ever read the cache, so its
/// contents are fixed before the first cell clock starts.
fn warm_context(
    ctx: &EvalContext<'_>,
    queries: &[&Query],
    engines: &[EngineKind],
    budget: &CellBudget,
    options: &MatrixOptions,
) {
    let plan = options.plan;
    if engines.contains(&EngineKind::Datalog) {
        let _ = ctx.edb();
    }
    if engines.contains(&EngineKind::Relational) {
        for query in queries {
            for rule in &query.rules {
                for conjunct in &rule.body {
                    for sym in conjunct.expr.symbols() {
                        let _ = ctx.relation(sym);
                    }
                }
            }
        }
    }
    if options.cache_mb > 0 {
        let mut exprs: Vec<gmark_core::query::RegularExpr> = Vec::new();
        let mut collect = |query: &Query| {
            for rule in &query.rules {
                for conjunct in &rule.body {
                    exprs.push(conjunct.expr.clone());
                }
            }
        };
        for query in queries {
            collect(query);
        }
        if engines.contains(&EngineKind::Navigational) {
            // The navigational engine evaluates the degraded forms, which
            // differ under stars; cache those shapes too.
            for query in queries {
                let (degraded, _) = crate::navigational::degrade_for_cypher(query);
                collect(&degraded);
            }
        }
        ctx.fill_expr_cache(&exprs, options.cache_mb, || budget.start());
    }
    if plan {
        // The planner reads per-predicate distinct-endpoint statistics;
        // warm them for every mentioned symbol so plan construction is
        // never billed to a cell.
        for query in queries {
            for rule in &query.rules {
                for conjunct in &rule.body {
                    for sym in conjunct.expr.symbols() {
                        let _ = ctx.symbol_stats(sym);
                    }
                }
            }
        }
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

fn run_cell(
    ctx: &EvalContext<'_>,
    queries: &[&Query],
    engines: &[EngineKind],
    budget: &CellBudget,
    warm_runs: usize,
    plans: Option<&[QueryPlan]>,
    ci: usize,
) -> EvalCell {
    let query_idx = ci / engines.len();
    let kind = engines[ci % engines.len()];
    let query = queries[query_idx];
    let plan = plans.map(|p| &p[query_idx]);

    // Cold run: decides the outcome and the fallback timing.
    let cold_budget = budget.start();
    let started = Instant::now();
    let result = kind.evaluate_with(ctx, query, plan, &cold_budget);
    let mut seconds = started.elapsed().as_secs_f64();

    let outcome = match result {
        Ok(answers) => {
            if warm_runs > 0 {
                // Section 7.1 protocol: warm runs, extremes dropped, mean.
                let mut times = Vec::with_capacity(warm_runs);
                for _ in 0..warm_runs {
                    let warm_budget = budget.start();
                    let t0 = Instant::now();
                    if kind.evaluate_with(ctx, query, plan, &warm_budget).is_ok() {
                        times.push(t0.elapsed().as_secs_f64());
                    }
                }
                if !times.is_empty() {
                    seconds = gmark_stats::summary::warm_run_average(&times);
                }
            }
            CellOutcome::Answers {
                arity: answers.arity,
                count: answers.count(),
            }
        }
        Err(e) => CellOutcome::Failed(e),
    };
    EvalCell {
        query: query_idx,
        engine: kind,
        outcome,
        estimate: plan.map(|p| p.est_answers),
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, PathExpr, RegularExpr, Rule, Symbol, Var};
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[5]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1), (4, 2)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3), (0, 4)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn chain(exprs: Vec<RegularExpr>) -> Query {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    }

    fn queries() -> Vec<Query> {
        vec![
            chain(vec![RegularExpr::symbol(sym(0))]),
            chain(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]),
            chain(vec![
                RegularExpr::symbol(sym(0)),
                RegularExpr::symbol(sym(1)),
            ]),
        ]
    }

    #[test]
    fn letters_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_letter(kind.letter()), Some(kind));
            assert_eq!(
                EngineKind::from_letter(kind.letter().to_ascii_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(EngineKind::from_letter('X'), None);
    }

    #[test]
    fn parse_list_preserves_order_and_rejects_garbage() {
        assert_eq!(
            EngineKind::parse_list("S,P").unwrap(),
            vec![EngineKind::TripleStore, EngineKind::Relational]
        );
        assert_eq!(
            EngineKind::parse_list("p, g, s, d").unwrap(),
            EngineKind::ALL.to_vec()
        );
        assert!(EngineKind::parse_list("P,P").is_err());
        assert!(EngineKind::parse_list("Q").is_err());
        assert!(EngineKind::parse_list("PS").is_err());
        assert!(EngineKind::parse_list("").is_err());
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let budget = CellBudget::default();
        let base = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &budget,
            &MatrixOptions::default(),
        );
        assert_eq!(base.cells.len(), 12);
        for threads in [2, 8] {
            let report = evaluate_matrix(
                &ctx,
                &q_refs,
                &EngineKind::ALL,
                &budget,
                &MatrixOptions {
                    threads,
                    ..MatrixOptions::default()
                },
            );
            assert_eq!(report.render(), base.render(), "{threads} threads");
            for (a, b) in report.cells.iter().zip(&base.cells) {
                assert_eq!(a.outcome, b.outcome);
                assert_eq!((a.query, a.engine), (b.query, b.engine));
            }
        }
    }

    #[test]
    fn cells_are_in_row_major_order_and_addressable() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let engines = [EngineKind::TripleStore, EngineKind::Datalog];
        let report = evaluate_matrix(
            &ctx,
            &q_refs,
            &engines,
            &CellBudget::default(),
            &MatrixOptions::default(),
        );
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.query, i / 2);
            assert_eq!(cell.engine, engines[i % 2]);
        }
        let c = report.cell(1, EngineKind::Datalog).unwrap();
        assert_eq!(c.query, 1);
        assert!(report.cell(0, EngineKind::Relational).is_none());
    }

    #[test]
    fn non_degraded_cells_agree_across_engines() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let report = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &CellBudget::default(),
            &MatrixOptions {
                threads: 3,
                ..MatrixOptions::default()
            },
        );
        // None of the test queries is degraded, so each row agrees.
        for q in 0..q_refs.len() {
            let reference = &report.cell(q, EngineKind::Relational).unwrap().outcome;
            for kind in EngineKind::ALL {
                assert_eq!(&report.cell(q, kind).unwrap().outcome, reference, "q{q}");
            }
        }
    }

    #[test]
    fn tuple_budget_failures_are_deterministic_cells() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let tight = CellBudget {
            timeout: None,
            max_tuples: 1,
        };
        let a = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &tight,
            &MatrixOptions::default(),
        );
        let b = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &tight,
            &MatrixOptions {
                threads: 4,
                ..MatrixOptions::default()
            },
        );
        assert_eq!(a.render(), b.render());
        assert!(a.totals().too_large > 0, "{:?}", a.totals());
    }

    #[test]
    fn expired_clock_times_out_every_cell() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let expired = CellBudget {
            timeout: Some(Duration::ZERO),
            max_tuples: usize::MAX,
        };
        let report = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &expired,
            &MatrixOptions::default(),
        );
        let t = report.totals();
        assert_eq!(t.timeout, t.cells, "{t:?}");
    }

    #[test]
    fn render_shape_and_labels() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let report = evaluate_matrix(
            &ctx,
            &q_refs,
            &[EngineKind::Relational],
            &CellBudget::default(),
            &MatrixOptions::default(),
        );
        let text = report.render_with_labels(&["first".to_owned()]);
        assert!(text.starts_with("query "), "{text}");
        assert!(text.contains("q0"), "{text}");
        assert!(text.contains("first"), "{text}");
        assert!(text.contains("(3 total)\n"), "{text}");
        // Planning is on by default, so ok cells read `est~count` and the
        // report closes with the plan-quality line.
        assert!(text.contains('~'), "{text}");
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("plan: "), "{text}");
        let times = report.render_times();
        assert!(times.contains("ms") || times.contains('s'), "{times}");
    }

    #[test]
    fn planner_changes_labels_but_never_outcomes() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let qs = queries();
        let q_refs: Vec<&Query> = qs.iter().collect();
        let budget = CellBudget::default();
        let planned = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &budget,
            &MatrixOptions::default(),
        );
        let unplanned = evaluate_matrix(
            &ctx,
            &q_refs,
            &EngineKind::ALL,
            &budget,
            &MatrixOptions {
                plan: false,
                ..MatrixOptions::default()
            },
        );
        for (a, b) in planned.cells.iter().zip(&unplanned.cells) {
            assert_eq!(a.outcome, b.outcome, "q{} {}", a.query, a.engine);
            assert!(a.estimate.is_some());
            assert!(b.estimate.is_none());
        }
        assert!(planned.plan_quality().is_some());
        assert!(unplanned.plan_quality().is_none());
        // Without estimates the unplanned report has no plan line and
        // plain count labels.
        assert!(!unplanned.render().contains("plan:"));
        assert!(!unplanned.render().contains('~'));
    }

    #[test]
    fn time_buckets_cover_the_decades() {
        assert_eq!(time_bucket(Duration::from_micros(10)), "<1ms");
        assert_eq!(time_bucket(Duration::from_millis(5)), "1-10ms");
        assert_eq!(time_bucket(Duration::from_millis(50)), "10-100ms");
        assert_eq!(time_bucket(Duration::from_millis(500)), "0.1-1s");
        assert_eq!(time_bucket(Duration::from_secs(5)), "1-10s");
        assert_eq!(time_bucket(Duration::from_secs(500)), ">=10s");
    }
}
