//! The navigational engine (`G`-style: a native graph database speaking
//! openCypher).
//!
//! Two properties of the paper's system `G` are reproduced:
//!
//! 1. **Query degradation.** openCypher variable-length patterns support
//!    neither inverses nor concatenations under a Kleene star, so such
//!    queries run in a weakened form — "the corresponding openCypher query
//!    has only the non-inverse symbol and/or the first symbol in a
//!    concatenation of symbols" (Section 7.1). This engine evaluates that
//!    degraded query, so its answers on recursive queries legitimately
//!    differ from the other engines — the reason the paper reports `G`
//!    returning empty/deviating results in Table 4.
//! 2. **Seed-driven navigation.** Evaluation expands bindings conjunct by
//!    conjunct from already-bound variables (pattern matching by
//!    traversal), rather than materializing whole relations. Starting
//!    seeds are the candidate nodes of the first conjunct's source.
//!
//! Variable-length patterns in openCypher also bind at least one hop by
//! default (`*` means `*1..`); gMark's star includes ε. The translator
//! emits `*0..` so this engine keeps ε — the degradation above is the only
//! semantic difference retained, keeping the comparison interpretable.

use crate::automaton::eval_rpq_from;
use crate::context::EvalContext;
use crate::joiner::{join_all, project, ConjunctPairs};
use crate::relations::Relation;
use crate::{unpack, Answers, Budget, Engine, EvalError, QueryPlan};
use gmark_core::query::{Conjunct, PathExpr, Query, RegularExpr, Rule, Var};
use gmark_store::NodeId;
use std::sync::Arc;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NavigationalEngine;

/// Section 7.1's degradation: under a star, keep each disjunct's first
/// non-inverse symbol (paths reduce to length one; inverse-only paths keep
/// their first symbol with the inversion dropped).
pub fn degrade_for_cypher(query: &Query) -> (Query, bool) {
    let mut lossy = false;
    let rules = query
        .rules
        .iter()
        .map(|r| Rule {
            head: r.head.clone(),
            body: r
                .body
                .iter()
                .map(|c| Conjunct {
                    src: c.src,
                    trg: c.trg,
                    expr: degrade_expr(&c.expr, &mut lossy),
                })
                .collect(),
        })
        .collect();
    (
        Query::new(rules).expect("degradation preserves well-formedness"),
        lossy,
    )
}

fn degrade_expr(expr: &RegularExpr, lossy: &mut bool) -> RegularExpr {
    if !expr.starred {
        return expr.clone();
    }
    let mut disjuncts = Vec::new();
    for p in &expr.disjuncts {
        if p.is_empty() {
            continue;
        }
        let degraded = if let Some(sym) = p.0.iter().find(|s| !s.inverse) {
            if p.len() > 1 || p.0.iter().any(|s| s.inverse) {
                *lossy = true;
            }
            PathExpr(vec![*sym])
        } else {
            *lossy = true;
            PathExpr(vec![p.0[0].flipped()]) // drop the inversion
        };
        if !disjuncts.contains(&degraded) {
            disjuncts.push(degraded);
        }
    }
    if disjuncts.is_empty() {
        // Only ε disjuncts: the star is the identity.
        disjuncts.push(PathExpr::epsilon());
    }
    RegularExpr {
        disjuncts,
        starred: true,
    }
}

impl Engine for NavigationalEngine {
    fn name(&self) -> &'static str {
        "G/navigational"
    }

    fn evaluate_ctx(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        self.evaluate_planned(ctx, query, None, budget)
    }

    fn evaluate_planned(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        plan: Option<&QueryPlan>,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        // Degradation rewrites conjunct *expressions* only — rule and
        // conjunct positions are preserved, so a plan computed on the
        // original query orders the degraded one correctly.
        let (query, _lossy) = degrade_for_cypher(query);
        let mut tuples = Vec::new();
        for (ri, rule) in query.rules.iter().enumerate() {
            let order = match plan.and_then(|p| p.rule_order(ri, rule.body.len())) {
                Some(order) => order,
                None => anchor_order(rule)?,
            };
            let table = eval_rule(ctx, rule, &order, budget)?;
            tuples.extend(project(&table, rule)?);
            budget.check_size(tuples.len())?;
        }
        Ok(Answers::new(query.arity(), tuples))
    }
}

/// Seed-driven evaluation along a caller-chosen `(conjunct, flip)` order
/// (the planner's, or the legacy [`anchor_order`]): each conjunct's pairs
/// are computed by automaton BFS *from the currently bound seeds only*,
/// flipped conjuncts traversing their reversed expression from the
/// target side.
fn eval_rule(
    ctx: &EvalContext<'_>,
    rule: &Rule,
    order: &[(usize, bool)],
    budget: &Budget,
) -> Result<crate::joiner::BindingTable, EvalError> {
    let mut bound: Vec<Var> = Vec::new();
    let mut materialized = Vec::with_capacity(rule.body.len());
    let mut table: Option<crate::joiner::BindingTable> = None;

    for &(ci, flip) in order {
        budget.check_time()?;
        let c = &rule.body[ci];
        let from = if flip { c.trg } else { c.src };
        // Seeds: the bound values of `from` if available, else all nodes.
        let bound_seeds: Option<Vec<NodeId>> = match &table {
            Some(t) if bound.contains(&from) => {
                let col = t.vars.iter().position(|&v| v == from).ok_or_else(|| {
                    EvalError::Internal(format!("bound variable {from} missing from table"))
                })?;
                let mut s: Vec<NodeId> = t.rows.iter().map(|r| r[col]).collect();
                s.sort_unstable();
                s.dedup();
                Some(s)
            }
            _ => None,
        };
        // An unbound forward conjunct is a whole-expression evaluation —
        // exactly the form the shared sub-expression cache holds (BFS
        // from every node produces the full relation, so the hit's
        // cardinality charge matches what navigation would have paid).
        // Bound or flipped traversals stay seed-driven BFS: there a
        // cached full relation would be charged where navigation only
        // explores a subset.
        let pairs: Arc<Relation> = if !flip && bound_seeds.is_none() {
            match ctx.cached_expr(&c.expr, budget)? {
                Some(hit) => hit,
                None => navigate(ctx, c, flip, None, budget)?,
            }
        } else {
            navigate(ctx, c, flip, bound_seeds.as_deref(), budget)?
        };
        materialized.push(ConjunctPairs {
            src: c.src,
            trg: c.trg,
            pairs,
        });
        // Incrementally join so the next conjunct sees tight seeds.
        let t = join_all(std::mem::take(&mut materialized), budget)?;
        // join_all consumed one conjunct; re-seed the running table.
        table = Some(match table {
            None => t,
            Some(prev) => merge_tables(prev, t, budget)?,
        });
        for v in [c.src, c.trg] {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    Ok(table.unwrap_or(crate::joiner::BindingTable {
        vars: Vec::new(),
        rows: vec![Vec::new()],
    }))
}

/// One conjunct's pairs by automaton BFS from `seeds` (`None` = every
/// node), flipped conjuncts traversing their reversed expression from
/// the target side.
fn navigate(
    ctx: &EvalContext<'_>,
    c: &Conjunct,
    flip: bool,
    seeds: Option<&[NodeId]>,
    budget: &Budget,
) -> Result<Arc<Relation>, EvalError> {
    let graph = ctx.view();
    let expr = if flip {
        RegularExpr {
            disjuncts: c.expr.disjuncts.iter().map(PathExpr::reversed).collect(),
            starred: c.expr.starred,
        }
    } else {
        c.expr.clone()
    };
    let nfa = ctx.nfa(&expr);
    let all: Vec<NodeId>;
    let seeds = match seeds {
        Some(s) => s,
        None => {
            all = (0..graph.node_count()).collect();
            &all
        }
    };
    let packed = eval_rpq_from(graph, &nfa, seeds, budget)?;
    let pairs: Vec<(NodeId, NodeId)> = if flip {
        packed
            .into_iter()
            .map(|p| {
                let (a, b) = unpack(p);
                (b, a)
            })
            .collect()
    } else {
        packed.into_iter().map(unpack).collect()
    };
    Ok(Arc::new(Relation::from_pairs(pairs)))
}

/// Joins two binding tables on their shared variables (hash join).
fn merge_tables(
    a: crate::joiner::BindingTable,
    b: crate::joiner::BindingTable,
    budget: &Budget,
) -> Result<crate::joiner::BindingTable, EvalError> {
    use rustc_hash::FxHashMap;
    let shared: Vec<(usize, usize)> = a
        .vars
        .iter()
        .enumerate()
        .filter_map(|(ia, va)| b.vars.iter().position(|vb| vb == va).map(|ib| (ia, ib)))
        .collect();
    let b_extra: Vec<usize> = (0..b.vars.len())
        .filter(|ib| !shared.iter().any(|&(_, sb)| sb == *ib))
        .collect();
    let mut index: FxHashMap<Vec<NodeId>, Vec<usize>> = FxHashMap::default();
    for (ri, row) in b.rows.iter().enumerate() {
        let key: Vec<NodeId> = shared.iter().map(|&(_, ib)| row[ib]).collect();
        index.entry(key).or_default().push(ri);
    }
    let mut vars = a.vars.clone();
    for &ib in &b_extra {
        vars.push(b.vars[ib]);
    }
    let mut rows = Vec::new();
    for row in &a.rows {
        let key: Vec<NodeId> = shared.iter().map(|&(ia, _)| row[ia]).collect();
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let mut r = row.clone();
                for &ib in &b_extra {
                    r.push(b.rows[ri][ib]);
                }
                rows.push(r);
            }
            budget.check_size(rows.len())?;
        }
    }
    Ok(crate::joiner::BindingTable { vars, rows })
}

/// Orders conjuncts so each (after the first) touches an already-bound
/// variable, flipping traversal direction when only the target is bound.
/// A broken ordering invariant surfaces as [`EvalError::Internal`] — one
/// malformed query fails its matrix cell instead of aborting the run.
fn anchor_order(rule: &Rule) -> Result<Vec<(usize, bool)>, EvalError> {
    let n = rule.body.len();
    let mut used = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut bound: Vec<Var> = Vec::new();
    for _ in 0..n {
        let pick = (0..n)
            .filter(|&i| !used[i])
            .find(|&i| bound.contains(&rule.body[i].src))
            .map(|i| (i, false))
            .or_else(|| {
                (0..n)
                    .filter(|&i| !used[i])
                    .find(|&i| bound.contains(&rule.body[i].trg))
                    .map(|i| (i, true))
            })
            .or_else(|| (0..n).find(|&i| !used[i]).map(|i| (i, false)))
            .ok_or_else(|| {
                EvalError::Internal("conjunct ordering ran out of unused conjuncts".to_owned())
            })?;
        used[pick.0] = true;
        for v in [rule.body[pick.0].src, rule.body[pick.0].trg] {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(pick);
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalEngine;
    use crate::Engine;
    use gmark_core::query::Symbol;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[5]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1), (4, 2)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3), (0, 4)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn chain(exprs: Vec<RegularExpr>) -> Query {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    }

    #[test]
    fn agrees_on_non_degraded_queries() {
        // No inverse/concatenation under stars: answers must match the
        // relational reference exactly.
        let cases = vec![
            chain(vec![RegularExpr::symbol(sym(0))]),
            chain(vec![RegularExpr::symbol(sym(0).flipped())]),
            chain(vec![
                RegularExpr::path(PathExpr(vec![sym(0), sym(1)])),
                RegularExpr::symbol(sym(1).flipped()),
            ]),
            chain(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]),
        ];
        for q in cases {
            let a = NavigationalEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            let b = RelationalEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            assert_eq!(a, b, "mismatch on {q:?}");
        }
    }

    #[test]
    fn degradation_changes_recursive_answers() {
        // (a⁻·a)* degrades to a*, so answers may differ from the faithful
        // evaluation — the Table 4 phenomenon.
        let q = chain(vec![RegularExpr::star(vec![PathExpr(vec![
            sym(0).flipped(),
            sym(0),
        ])])]);
        let nav = NavigationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        let reference = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert_ne!(nav, reference, "degradation should be observable here");
    }

    #[test]
    fn degrade_marks_lossiness() {
        let clean = chain(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]);
        let (dq, lossy) = degrade_for_cypher(&clean);
        assert!(!lossy);
        assert_eq!(dq, clean);

        let dirty = chain(vec![RegularExpr::star(vec![PathExpr(vec![
            sym(0),
            sym(1),
        ])])]);
        let (dq, lossy) = degrade_for_cypher(&dirty);
        assert!(lossy);
        assert_eq!(
            dq.rules[0].body[0].expr,
            RegularExpr::star(vec![PathExpr(vec![sym(0)])])
        );

        let inverse_only = chain(vec![RegularExpr::star(vec![PathExpr(vec![
            sym(1).flipped()
        ])])]);
        let (dq, lossy) = degrade_for_cypher(&inverse_only);
        assert!(lossy);
        assert_eq!(
            dq.rules[0].body[0].expr,
            RegularExpr::star(vec![PathExpr(vec![sym(1)])])
        );
    }

    #[test]
    fn non_starred_expressions_untouched() {
        let q = chain(vec![RegularExpr::union(vec![
            PathExpr(vec![sym(0), sym(1).flipped()]),
            PathExpr(vec![sym(1)]),
        ])]);
        let (dq, lossy) = degrade_for_cypher(&q);
        assert!(!lossy);
        assert_eq!(dq, q);
    }

    #[test]
    fn anchor_order_flips_when_needed() {
        // Body: (?x1, a, ?x0), (?x1, b, ?x2) — after the first conjunct
        // binds x1/x0, the second anchors at x1 forward.
        let rule = Rule {
            head: vec![Var(0), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(1),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(0),
                },
                Conjunct {
                    src: Var(1),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(2),
                },
            ],
        };
        let order = anchor_order(&rule).unwrap();
        assert_eq!(order, vec![(0, false), (1, false)]);
    }

    #[test]
    fn planned_order_preserves_answers() {
        // The planner may pick any anchor order; answers must not change,
        // degraded or not.
        let cases = vec![
            chain(vec![
                RegularExpr::symbol(sym(0)),
                RegularExpr::symbol(sym(1)),
            ]),
            chain(vec![
                RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1)])]),
                RegularExpr::symbol(sym(1).flipped()),
            ]),
        ];
        let g = graph();
        let ctx = crate::EvalContext::new(&g);
        for q in cases {
            let plan = crate::planner::plan_query(&ctx, None, &q);
            let budget = Budget::default();
            let planned = NavigationalEngine
                .evaluate_planned(&ctx, &q, Some(&plan), &budget)
                .unwrap();
            let unplanned = NavigationalEngine.evaluate_ctx(&ctx, &q, &budget).unwrap();
            assert_eq!(planned, unplanned, "on {q:?}");
        }
    }

    #[test]
    fn boolean_query_works() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let a = NavigationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert!(a.non_empty());
    }
}
