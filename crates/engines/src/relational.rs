//! The relational engine (`P`-style: PostgreSQL with recursive views).
//!
//! Evaluates exactly the plan the paper's SQL:1999 translation induces:
//! every conjunct becomes a fully materialized binary relation (scans +
//! joins + `UNION`s; a `WITH RECURSIVE` linear-recursion fixpoint for
//! stars), and conjuncts are then hash-joined left-to-right in declaration
//! order — a straightforward evaluation with no property-path shortcuts
//! and no join reordering.
//!
//! Profile reproduced from the paper: strong on constant- and
//! linear-selectivity non-recursive queries (Fig. 12(a)/(b), where "P
//! reacts better than S, G, and D"), but materializing a
//! quadratic-selectivity transitive closure exhausts its budget — the "-"
//! cells of Table 4.

use crate::context::EvalContext;
use crate::joiner::{join_all, project, ConjunctPairs};
use crate::{Answers, Budget, Engine, EvalError, QueryPlan};
use gmark_core::query::Query;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelationalEngine;

impl Engine for RelationalEngine {
    fn name(&self) -> &'static str {
        "P/relational"
    }

    fn evaluate_ctx(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        self.evaluate_planned(ctx, query, None, budget)
    }

    fn evaluate_planned(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        plan: Option<&QueryPlan>,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        let mut tuples = Vec::new();
        for (ri, rule) in query.rules.iter().enumerate() {
            // Materialize each conjunct — in the planner's join order
            // when a plan is given, declaration order otherwise; base
            // symbol relations are the context's shared sorted indexes.
            let order: Vec<usize> = plan
                .and_then(|p| p.rule_order(ri, rule.body.len()))
                .map(|o| o.into_iter().map(|(ci, _)| ci).collect())
                .unwrap_or_else(|| (0..rule.body.len()).collect());
            let mut conjuncts = Vec::with_capacity(rule.body.len());
            for &ci in &order {
                let c = &rule.body[ci];
                // A sub-expression cache hit mounts the shared relation
                // directly (charged its cardinality check only); a miss
                // computes through the sorted kernels as before.
                let rel = ctx.expr_relation(&c.expr, budget)?;
                conjuncts.push(ConjunctPairs {
                    src: c.src,
                    trg: c.trg,
                    pairs: rel,
                });
            }
            let table = join_all(conjuncts, budget)?;
            tuples.extend(project(&table, rule)?);
            budget.check_size(tuples.len())?;
        }
        Ok(Answers::new(query.arity(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, PathExpr, RegularExpr, Rule, Symbol, Var};
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    /// a: 0→1, 1→2, 2→0, 3→1;  b: 1→3, 2→3.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[4]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    #[test]
    fn single_conjunct() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(1)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let a = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert_eq!(a.tuples, vec![vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn two_conjunct_chain() {
        // (?x, a, ?y), (?y, b, ?z) projected on (x, z).
        let q = Query::single(Rule {
            head: vec![Var(0), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(1),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(2),
                },
            ],
        })
        .unwrap();
        let a = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        // a·b pairs: (0,3) via 1, (1,3) via 2, (3,3) via 1.
        assert_eq!(a.tuples, vec![vec![0, 3], vec![1, 3], vec![3, 3]]);
    }

    #[test]
    fn recursive_conjunct() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::star(vec![PathExpr(vec![sym(0)])]),
                trg: Var(1),
            }],
        })
        .unwrap();
        let a = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        let nfa_pairs = crate::automaton::eval_rpq_pairs(
            &graph(),
            &q.rules[0].body[0].expr,
            &Budget::default(),
        )
        .unwrap();
        let expected: Vec<Vec<_>> = nfa_pairs.into_iter().map(|(s, t)| vec![s, t]).collect();
        assert_eq!(a.tuples, expected);
    }

    #[test]
    fn boolean_query() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let a = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert!(a.non_empty());
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn union_of_rules() {
        let mk = |p: usize| Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(p)),
                trg: Var(1),
            }],
        };
        let q = Query::new(vec![mk(0), mk(1)]).unwrap();
        let a = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert_eq!(a.count(), 6); // 4 a-edges + 2 b-edges, all distinct
    }

    #[test]
    fn budget_propagates() {
        let q = Query::single(Rule {
            head: vec![Var(0), Var(1)],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::star(vec![PathExpr(vec![sym(0)])]),
                trg: Var(1),
            }],
        })
        .unwrap();
        let tight = Budget {
            max_tuples: 2,
            ..Budget::default()
        };
        assert!(RelationalEngine.evaluate(&graph(), &q, &tight).is_err());
    }
}
