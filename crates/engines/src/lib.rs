//! UCRPQ evaluation engines over gMark graphs.
//!
//! Section 7 of the paper benchmarks four systems: PostgreSQL (`P`), a
//! SPARQL engine (`S`), a native graph database speaking openCypher (`G`),
//! and a Datalog engine (`D`). Those systems are commercial/external; this
//! crate provides four in-repo engines with the same architectural
//! signatures (see DESIGN.md §4 for the substitution argument):
//!
//! * [`RelationalEngine`] (`P`) — materializes one binary relation per
//!   conjunct with hash joins and a linear-recursion fixpoint for stars,
//!   like the paper's SQL:1999 translation evaluated bottom-up;
//! * [`TripleStoreEngine`] (`S`) — per-conjunct automaton (property-path)
//!   evaluation over sorted indexes, greedy smallest-first conjunct
//!   ordering, sort-merge joins;
//! * [`NavigationalEngine`] (`G`) — seed-driven BFS navigation, evaluating
//!   the *degraded* query an openCypher system would run (inverses and
//!   concatenations under `*` are dropped per Section 7.1), hence its
//!   answer sets legitimately differ on such queries;
//! * [`DatalogEngine`] (`D`) — translates the query to a positive Datalog
//!   program and runs it on a general-purpose semi-naive engine
//!   ([`datalog`]), the only engine expected to finish every recursive
//!   query of Table 4.
//!
//! All engines implement [`Engine`] and are resource-governed by
//! [`Budget`]: exceeding the time or tuple budget aborts with an error —
//! reproducing the "failed / manually terminated" entries of the paper's
//! Tables and figures rather than hanging the harness.
//!
//! Engines share one immutable [`EvalContext`] — per-predicate sorted
//! relations, the Datalog EDB, a compiled-NFA cache — built once per graph
//! instead of re-derived per query, and the [`evaluate_matrix`] harness
//! fans the (engine × query) cells of a whole workload over worker threads
//! with a fresh per-cell [`Budget`], reassembling a deterministic
//! [`EvalReport`].

#![warn(missing_docs)]

pub mod automaton;
pub mod context;
pub mod datalog;
mod joiner;
pub mod matrix;
pub mod navigational;
pub mod planner;
pub mod relational;
pub mod relations;
pub mod triplestore;

pub use automaton::{compile_nfa, eval_rpq, Nfa};
pub use context::{EvalCacheStats, EvalContext, SymbolStats};
pub use datalog::DatalogEngine;
pub use matrix::{
    evaluate_matrix, evaluate_matrix_with_schema, CellBudget, CellOutcome, EngineKind, EvalCell,
    EvalReport, EvalTotals, MatrixOptions, PlanQuality,
};
pub use navigational::NavigationalEngine;
pub use planner::{plan_query, ConjunctStep, QueryPlan, RulePlan};
pub use relational::RelationalEngine;
pub use triplestore::TripleStoreEngine;

use gmark_core::query::Query;
use gmark_store::{Graph, NodeId};
use std::time::{Duration, Instant};

/// Resource limits for one evaluation.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    /// Maximum number of tuples any intermediate or final result may hold.
    pub max_tuples: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline: None,
            max_tuples: 50_000_000,
        }
    }
}

impl Budget {
    /// A budget with a wall-clock timeout from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + timeout),
            ..Default::default()
        }
    }

    /// A budget with a timeout and a tuple cap.
    pub fn new(timeout: Duration, max_tuples: usize) -> Self {
        Budget {
            deadline: Some(Instant::now() + timeout),
            max_tuples,
        }
    }

    /// A budget with an optional timeout (starting now) and a tuple cap:
    /// `None` means no wall-clock deadline at all — the fully deterministic
    /// regime the evaluation-determinism tests pin.
    pub fn with_limits(timeout: Option<Duration>, max_tuples: usize) -> Self {
        Budget {
            deadline: timeout.map(|t| Instant::now() + t),
            max_tuples,
        }
    }

    /// Checks the wall clock; call this in loops.
    #[inline]
    pub fn check_time(&self) -> Result<(), EvalError> {
        self.check_time_at(Instant::now())
    }

    /// Clock-injected variant of [`Budget::check_time`]: checks the
    /// deadline against a caller-supplied instant, so deadline logic is
    /// testable without sleeping (sleep-based timing is flaky on loaded CI
    /// machines).
    #[inline]
    pub fn check_time_at(&self, now: Instant) -> Result<(), EvalError> {
        if let Some(d) = self.deadline {
            if now > d {
                return Err(EvalError::Timeout);
            }
        }
        Ok(())
    }

    /// Checks a tuple count against the cap.
    #[inline]
    pub fn check_size(&self, tuples: usize) -> Result<(), EvalError> {
        if tuples > self.max_tuples {
            return Err(EvalError::TooLarge(tuples));
        }
        Ok(())
    }
}

/// Why an evaluation failed — these are *reported outcomes* in the
/// experiments (the paper's "-" cells), not panics. The `gmark` facade
/// crate wraps this type into its unified `run::GmarkError` alongside the
/// other pipeline errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The wall-clock budget was exhausted.
    Timeout,
    /// An intermediate result exceeded the tuple budget.
    TooLarge(usize),
    /// The engine cannot express the query (after its documented
    /// degradations), or the query violates an assumption the engine
    /// depends on (e.g. a head variable never bound in the body).
    Unsupported(String),
    /// An engine invariant was violated mid-evaluation. These used to be
    /// `expect` panics in the hot loops; as typed errors, one broken query
    /// becomes a failed *cell* in the evaluation matrix instead of
    /// aborting the whole run.
    Internal(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Timeout => write!(f, "timeout"),
            EvalError::TooLarge(n) => write!(f, "intermediate result too large ({n} tuples)"),
            EvalError::Unsupported(what) => write!(f, "unsupported: {what}"),
            EvalError::Internal(what) => write!(f, "engine invariant violated: {what}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A set of distinct answer tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answers {
    /// The query arity (tuple width).
    pub arity: usize,
    /// Distinct tuples, sorted lexicographically for stable comparison.
    pub tuples: Vec<Vec<NodeId>>,
}

impl Answers {
    /// Builds an answer set, sorting and deduplicating.
    pub fn new(arity: usize, mut tuples: Vec<Vec<NodeId>>) -> Answers {
        tuples.sort_unstable();
        tuples.dedup();
        Answers { arity, tuples }
    }

    /// The `count(distinct(?v))` measurement of Section 7.1.
    pub fn count(&self) -> u64 {
        self.tuples.len() as u64
    }

    /// For Boolean queries: whether the body was satisfiable.
    pub fn non_empty(&self) -> bool {
        !self.tuples.is_empty()
    }
}

/// A UCRPQ evaluation engine.
pub trait Engine {
    /// Short system letter + architecture name for reports.
    fn name(&self) -> &'static str;

    /// Evaluates `query` against a shared [`EvalContext`] under a resource
    /// budget, returning the distinct projected tuples. This is the
    /// per-query hot path: the context's precomputed indexes (sorted
    /// relations, Datalog EDB, compiled-NFA cache) are borrowed, never
    /// rebuilt.
    fn evaluate_ctx(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError>;

    /// Evaluates `query` following a planner-chosen conjunct order (see
    /// [`planner::plan_query`]). `None` falls back to the engine's legacy
    /// order, and the default implementation ignores the plan entirely —
    /// a plan may only change *how* the answer is computed, never *what*
    /// it is.
    fn evaluate_planned(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        plan: Option<&QueryPlan>,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        let _ = plan;
        self.evaluate_ctx(ctx, query, budget)
    }

    /// Evaluates `query` on `graph` under a resource budget.
    ///
    /// Convenience for one-off evaluations: builds a fresh (lazy)
    /// [`EvalContext`] per call. Callers evaluating many queries on the
    /// same graph should build the context once and use
    /// [`Engine::evaluate_ctx`] (or the [`evaluate_matrix`] harness) so the
    /// per-predicate indexes are shared.
    fn evaluate(
        &self,
        graph: &Graph,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        self.evaluate_ctx(&EvalContext::new(graph), query, budget)
    }
}

/// All four engines, boxed, in the paper's P/G/S/D report order.
pub fn all_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(RelationalEngine),
        Box::new(NavigationalEngine),
        Box::new(TripleStoreEngine),
        Box::new(DatalogEngine),
    ]
}

/// Packs an arity-2 tuple into a `u64` (internal fast path for pair sets).
#[inline]
pub(crate) fn pack(a: NodeId, b: NodeId) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pack`].
#[inline]
pub(crate) fn unpack(p: u64) -> (NodeId, NodeId) {
    ((p >> 32) as NodeId, p as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trip() {
        for (a, b) in [(0, 0), (1, 2), (u32::MAX, 7), (123_456, u32::MAX)] {
            assert_eq!(unpack(pack(a, b)), (a, b));
        }
    }

    #[test]
    fn answers_dedup_and_sort() {
        let a = Answers::new(2, vec![vec![3, 4], vec![1, 2], vec![3, 4]]);
        assert_eq!(a.tuples, vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(a.count(), 2);
        assert!(a.non_empty());
    }

    #[test]
    fn budget_timeout_fires() {
        // Injected clock: no sleeping, no dependence on scheduler timing.
        let b = Budget::with_timeout(Duration::from_secs(3600));
        let now = Instant::now();
        assert!(b.check_time_at(now).is_ok());
        assert_eq!(
            b.check_time_at(now + Duration::from_secs(7200)),
            Err(EvalError::Timeout)
        );
    }

    #[test]
    fn budget_size_cap() {
        let b = Budget {
            deadline: None,
            max_tuples: 10,
        };
        assert!(b.check_size(10).is_ok());
        assert_eq!(b.check_size(11), Err(EvalError::TooLarge(11)));
    }

    #[test]
    fn default_budget_is_permissive() {
        let b = Budget::default();
        assert!(b.check_time().is_ok());
        assert!(b.check_size(1_000_000).is_ok());
    }
}
