//! Materialized binary relations: the building blocks of the relational
//! (`P`-style) engine and of the Kleene-star fixpoints.
//!
//! A [`Relation`] is a sorted, deduplicated set of compact `u32` node
//! pairs — the SQL translation's `(s, t)` CTEs made concrete. The kernels
//! never hash and never re-sort whole results: composition walks the
//! left side source-run by source-run with a galloping cursor into the
//! right side (output is emitted already sorted), union and difference
//! are linear merges of sorted inputs, and the star is the *linear
//! recursion* of the paper's footnote 4, evaluated semi-naively with the
//! delta maintained as a sorted set difference. Per-source target buffers
//! live in a per-worker scratch arena (`thread_local`) so the inner loop
//! allocates nothing in steady state.

use crate::context::EvalContext;
use crate::{Budget, EvalError};
use gmark_core::query::{PathExpr, RegularExpr, Symbol};
use gmark_store::{GraphView, NodeId};
use std::cell::RefCell;
use std::cmp::Ordering;

thread_local! {
    /// Per-worker scratch arena: the per-source target buffer reused by
    /// every composition this thread runs. Steady-state compositions
    /// allocate only their output vector.
    static SCRATCH: RefCell<Vec<NodeId>> = const { RefCell::new(Vec::new()) };
}

/// Galloping (exponential + binary) search: the first index `>= lo` whose
/// source is `>= t`. Precondition: every entry before `lo` has source
/// `< t` — callers walk `t` in ascending order and feed the previous
/// result back in, so each run lookup is `O(log gap)`, not `O(log n)`.
fn gallop_src(pairs: &[(NodeId, NodeId)], t: NodeId, mut lo: usize) -> usize {
    let mut step = 1usize;
    let mut hi = lo;
    while hi < pairs.len() && pairs[hi].0 < t {
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    let hi = hi.min(pairs.len());
    lo + pairs[lo..hi].partition_point(|&(s, _)| s < t)
}

/// A sorted, deduplicated set of node pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    pairs: Vec<(NodeId, NodeId)>,
}

impl Relation {
    /// Builds from arbitrary pairs (sorts + dedups).
    pub fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> Relation {
        pairs.sort_unstable();
        pairs.dedup();
        Relation { pairs }
    }

    /// The relation of one `Σ±` symbol: all `a`-edges, flipped for `a⁻`.
    ///
    /// Both directions come pre-sorted out of the CSR indexes — in memory
    /// or paged ([`GraphView::pairs`] walks the backward index for `a⁻`),
    /// so no sort is paid here — only a dedup pass for graphs that keep
    /// parallel edges.
    pub fn of_symbol<'g>(graph: impl Into<GraphView<'g>>, sym: Symbol) -> Relation {
        let mut pairs: Vec<(NodeId, NodeId)> =
            graph.into().pairs(sym.predicate.0, sym.inverse).collect();
        debug_assert!(pairs.is_sorted());
        pairs.dedup();
        Relation { pairs }
    }

    /// Consumes the relation, yielding its sorted pairs.
    pub fn into_pairs(self) -> Vec<(NodeId, NodeId)> {
        self.pairs
    }

    /// The identity relation over all `n` nodes (the ε relation).
    pub fn identity(n: NodeId) -> Relation {
        Relation {
            pairs: (0..n).map(|v| (v, v)).collect(),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs, sorted.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Approximate heap footprint of the pair columns, in bytes (the unit
    /// the sub-expression cache's admission budget is accounted in).
    pub fn heap_bytes(&self) -> usize {
        self.pairs.len() * std::mem::size_of::<(NodeId, NodeId)>()
    }

    /// Sort-merge composition `self ; other` = `{(s, u) | (s, t) ∈ self,
    /// (t, u) ∈ other}`.
    ///
    /// Walks `self` one source run at a time: the run's targets are
    /// ascending, so the matching runs of `other` are found with a
    /// forward-only galloping cursor. The run's result targets are
    /// deduplicated in the per-worker scratch buffer and appended — the
    /// output is sorted by construction, so no final re-sort (and no hash
    /// set) is ever paid. The tuple budget is charged on the *deduplicated*
    /// output, not the raw match count.
    pub fn compose(&self, other: &Relation, budget: &Budget) -> Result<Relation, EvalError> {
        if self.pairs.is_empty() || other.pairs.is_empty() {
            return Ok(Relation::default());
        }
        SCRATCH.with(|cell| {
            let targets = &mut *cell.borrow_mut();
            let mut out: Vec<(NodeId, NodeId)> = Vec::new();
            let o = &other.pairs[..];
            let mut i = 0usize;
            let mut runs = 0usize;
            while i < self.pairs.len() {
                if runs.is_multiple_of(1024) {
                    budget.check_time()?;
                }
                runs += 1;
                let s = self.pairs[i].0;
                let run_end = i + gallop_src(&self.pairs[i..], s + 1, 0);
                targets.clear();
                let mut cursor = 0usize;
                for &(_, t) in &self.pairs[i..run_end] {
                    let lo = gallop_src(o, t, cursor);
                    let mut j = lo;
                    while j < o.len() && o[j].0 == t {
                        targets.push(o[j].1);
                        j += 1;
                    }
                    cursor = lo;
                }
                targets.sort_unstable();
                targets.dedup();
                budget.check_size(out.len() + targets.len())?;
                out.extend(targets.iter().map(|&u| (s, u)));
                i = run_end;
            }
            Ok(Relation { pairs: out })
        })
    }

    /// Union: a linear merge of two sorted inputs (no re-sort).
    pub fn union(&self, other: &Relation) -> Relation {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut pairs = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                Ordering::Less => {
                    pairs.push(a[i]);
                    i += 1;
                }
                Ordering::Greater => {
                    pairs.push(b[j]);
                    j += 1;
                }
                Ordering::Equal => {
                    pairs.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        pairs.extend_from_slice(&a[i..]);
        pairs.extend_from_slice(&b[j..]);
        Relation { pairs }
    }

    /// Set difference `self \ other`: a linear merge of sorted inputs.
    pub fn difference(&self, other: &Relation) -> Relation {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut pairs = Vec::new();
        let mut j = 0usize;
        for &p in a {
            while j < b.len() && b[j] < p {
                j += 1;
            }
            if j >= b.len() || b[j] != p {
                pairs.push(p);
            }
        }
        Relation { pairs }
    }

    /// Whether the relation contains `(s, t)` (binary search).
    pub fn contains(&self, s: NodeId, t: NodeId) -> bool {
        self.pairs.binary_search(&(s, t)).is_ok()
    }

    /// The contiguous run of pairs whose source is `s` (their targets,
    /// sorted): the binary-search semi-join primitive.
    pub fn targets_of(&self, s: NodeId) -> &[(NodeId, NodeId)] {
        let lo = self.pairs.partition_point(|&(ps, _)| ps < s);
        let hi = lo + self.pairs[lo..].partition_point(|&(ps, _)| ps == s);
        &self.pairs[lo..hi]
    }

    /// Reflexive-transitive closure `self*` over `n` nodes via semi-naive
    /// linear recursion: `R0 = id ∪ self`, `Δ ⋈ self` until no new pairs,
    /// with the delta maintained as a sorted set difference (no hash set).
    ///
    /// This is the evaluation the SQL translation's `WITH RECURSIVE` CTE
    /// induces; on quadratic-selectivity closures it materializes the full
    /// result, which is exactly why the `P`-style engine blows its budget
    /// on the paper's hardest recursive queries (Table 4).
    pub fn star(&self, n: NodeId, budget: &Budget) -> Result<Relation, EvalError> {
        let mut acc = Relation::identity(n).union(self);
        budget.check_size(acc.len())?;
        let mut delta = self.difference(&Relation::identity(n));
        while !delta.is_empty() {
            budget.check_time()?;
            let next = delta.compose(self, budget)?;
            let fresh = next.difference(&acc);
            if fresh.is_empty() {
                break;
            }
            acc = acc.union(&fresh);
            budget.check_size(acc.len())?;
            delta = fresh;
        }
        Ok(acc)
    }

    /// Evaluates a whole regular expression by relational algebra:
    /// concatenation ⇒ compose, disjunction ⇒ union, star ⇒ closure.
    ///
    /// Per-symbol relations are collected from the graph on the spot —
    /// the one-off path. Engines evaluating many queries on one graph use
    /// [`Relation::of_expr_ctx`], which borrows the shared, build-once
    /// relations of an [`EvalContext`] instead (and, through
    /// [`EvalContext::expr_relation`], the cross-cell sub-expression
    /// cache).
    pub fn of_expr<'g>(
        graph: impl Into<GraphView<'g>>,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let graph = graph.into();
        Relation::of_expr_with(
            &mut |sym| Relation::of_symbol(graph, sym),
            graph.node_count(),
            expr,
            budget,
        )
    }

    /// [`Relation::of_expr`] against a shared [`EvalContext`]: leaf symbol
    /// relations come from the context's per-`(predicate, direction)`
    /// cache, so nothing is re-derived from the graph on the per-query
    /// path.
    pub fn of_expr_ctx(
        ctx: &EvalContext<'_>,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        Relation::of_expr_with(
            &mut |sym| ctx.relation(sym).clone(),
            ctx.view().node_count(),
            expr,
            budget,
        )
    }

    pub(crate) fn of_expr_with(
        leaf: &mut dyn FnMut(Symbol) -> Relation,
        n: NodeId,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let mut union_acc: Option<Relation> = None;
        for path in &expr.disjuncts {
            let r = Relation::of_path_with(leaf, n, path, budget)?;
            union_acc = Some(match union_acc {
                None => r,
                Some(acc) => acc.union(&r),
            });
        }
        let base = union_acc.unwrap_or_default();
        if expr.starred {
            base.star(n, budget)
        } else {
            Ok(base)
        }
    }

    /// Evaluates one concatenation path.
    pub fn of_path<'g>(
        graph: impl Into<GraphView<'g>>,
        path: &PathExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let graph = graph.into();
        Relation::of_path_with(
            &mut |sym| Relation::of_symbol(graph, sym),
            graph.node_count(),
            path,
            budget,
        )
    }

    pub(crate) fn of_path_with(
        leaf: &mut dyn FnMut(Symbol) -> Relation,
        n: NodeId,
        path: &PathExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        if path.is_empty() {
            return Ok(Relation::identity(n));
        }
        let mut acc = leaf(path.0[0]);
        for &sym in &path.0[1..] {
            let next = leaf(sym);
            acc = acc.compose(&next, budget)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    fn chain_graph() -> Graph {
        // a-edges: 0→1→2→3 (a path).
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[4]), 1);
        for (s, t) in [(0, 1), (1, 2), (2, 3)] {
            b.edge(s, 0, t);
        }
        b.build()
    }

    #[test]
    fn symbol_relation_and_inverse() {
        let g = chain_graph();
        let r = Relation::of_symbol(&g, sym(0));
        assert_eq!(r.pairs(), &[(0, 1), (1, 2), (2, 3)]);
        let ri = Relation::of_symbol(&g, sym(0).flipped());
        assert_eq!(ri.pairs(), &[(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn composition() {
        let g = chain_graph();
        let r = Relation::of_symbol(&g, sym(0));
        let rr = r.compose(&r, &Budget::default()).unwrap();
        assert_eq!(rr.pairs(), &[(0, 2), (1, 3)]);
        let rrr = rr.compose(&r, &Budget::default()).unwrap();
        assert_eq!(rrr.pairs(), &[(0, 3)]);
    }

    #[test]
    fn composition_output_is_sorted_and_deduplicated() {
        // Two sources fan into one hub which fans out: composition must
        // dedup per source and stay sorted without a final sort pass.
        let a = Relation::from_pairs(vec![(0, 5), (0, 6), (1, 5), (1, 6)]);
        let b = Relation::from_pairs(vec![(5, 7), (5, 8), (6, 7), (6, 8)]);
        let ab = a.compose(&b, &Budget::default()).unwrap();
        assert_eq!(ab.pairs(), &[(0, 7), (0, 8), (1, 7), (1, 8)]);
        assert!(ab.pairs().is_sorted());
    }

    #[test]
    fn union_dedups() {
        let a = Relation::from_pairs(vec![(0, 1), (1, 2)]);
        let b = Relation::from_pairs(vec![(1, 2), (2, 3)]);
        assert_eq!(a.union(&b).pairs(), &[(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn difference_and_contains() {
        let a = Relation::from_pairs(vec![(0, 1), (1, 2), (2, 3)]);
        let b = Relation::from_pairs(vec![(1, 2)]);
        assert_eq!(a.difference(&b).pairs(), &[(0, 1), (2, 3)]);
        assert!(a.contains(1, 2));
        assert!(!a.contains(2, 1));
        assert_eq!(a.targets_of(1), &[(1, 2)]);
        assert!(a.targets_of(7).is_empty());
    }

    #[test]
    fn star_of_chain() {
        let g = chain_graph();
        let r = Relation::of_symbol(&g, sym(0));
        let star = r.star(4, &Budget::default()).unwrap();
        // id ∪ all forward reachabilities on the path.
        let expected = Relation::from_pairs(vec![
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 2),
            (1, 3),
            (0, 3),
        ]);
        assert_eq!(star, expected);
    }

    #[test]
    fn star_agrees_with_automaton() {
        let g = chain_graph();
        let expr = RegularExpr::star(vec![PathExpr(vec![sym(0)])]);
        let via_rel = Relation::of_expr(&g, &expr, &Budget::default()).unwrap();
        let via_nfa = crate::automaton::eval_rpq_pairs(&g, &expr, &Budget::default()).unwrap();
        assert_eq!(via_rel.pairs(), via_nfa.as_slice());
    }

    #[test]
    fn epsilon_path_is_identity() {
        let g = chain_graph();
        let r = Relation::of_path(&g, &PathExpr::epsilon(), &Budget::default()).unwrap();
        assert_eq!(r, Relation::identity(4));
    }

    #[test]
    fn expr_disjunction() {
        let g = chain_graph();
        let expr = RegularExpr::union(vec![PathExpr(vec![sym(0)]), PathExpr(vec![sym(0), sym(0)])]);
        let r = Relation::of_expr(&g, &expr, &Budget::default()).unwrap();
        assert_eq!(r.pairs(), &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn star_budget_enforced() {
        // Complete bipartite-ish blowup: star on a dense relation.
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[50]), 1);
        for s in 0..50u32 {
            for t in 0..50u32 {
                if s != t {
                    b.edge(s, 0, t);
                }
            }
        }
        let g = b.build();
        let r = Relation::of_symbol(&g, sym(0));
        let tight = Budget {
            max_tuples: 100,
            ..Budget::default()
        };
        assert!(matches!(r.star(50, &tight), Err(EvalError::TooLarge(_))));
    }

    #[test]
    fn ctx_expr_matches_direct_expr() {
        let g = chain_graph();
        let ctx = crate::context::EvalContext::new(&g);
        let exprs = [
            RegularExpr::symbol(sym(0)),
            RegularExpr::symbol(sym(0).flipped()),
            RegularExpr::star(vec![PathExpr(vec![sym(0)])]),
            RegularExpr::union(vec![PathExpr(vec![sym(0), sym(0)]), PathExpr::epsilon()]),
        ];
        for expr in exprs {
            assert_eq!(
                Relation::of_expr_ctx(&ctx, &expr, &Budget::default()).unwrap(),
                Relation::of_expr(&g, &expr, &Budget::default()).unwrap(),
                "{expr:?}"
            );
        }
    }

    #[test]
    fn compose_on_empty() {
        let a = Relation::default();
        let b = Relation::from_pairs(vec![(0, 1)]);
        assert!(a.compose(&b, &Budget::default()).unwrap().is_empty());
        assert!(b.compose(&a, &Budget::default()).unwrap().is_empty());
    }

    #[test]
    fn gallop_agrees_with_partition_point() {
        let pairs: Vec<(NodeId, NodeId)> = vec![(0, 0), (0, 1), (2, 0), (2, 5), (7, 1), (9, 9)];
        for t in 0..=10u32 {
            let expected = pairs.partition_point(|&(s, _)| s < t);
            // From every valid starting hint at or before the answer.
            for lo in 0..=expected {
                if pairs[..lo].iter().any(|&(s, _)| s >= t) {
                    continue; // precondition violated, skip
                }
                assert_eq!(gallop_src(&pairs, t, lo), expected, "t={t} lo={lo}");
            }
        }
    }
}
