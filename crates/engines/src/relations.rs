//! Materialized binary relations: the building blocks of the relational
//! (`P`-style) engine and of the Kleene-star fixpoints.
//!
//! A [`Relation`] is a sorted, deduplicated set of `(s, t)` pairs — the SQL
//! translation's `(s, t)` CTEs made concrete. Composition is a sort-merge
//! join, union a merge, and the star the *linear recursion* of the paper's
//! footnote 4, evaluated semi-naively (delta-driven) so each derivation is
//! joined only once.

use crate::context::EvalContext;
use crate::{pack, Budget, EvalError};
use gmark_core::query::{PathExpr, RegularExpr, Symbol};
use gmark_store::{GraphView, NodeId};
use rustc_hash::FxHashSet;

/// A sorted, deduplicated set of node pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    pairs: Vec<(NodeId, NodeId)>,
}

impl Relation {
    /// Builds from arbitrary pairs (sorts + dedups).
    pub fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> Relation {
        pairs.sort_unstable();
        pairs.dedup();
        Relation { pairs }
    }

    /// The relation of one `Σ±` symbol: all `a`-edges, flipped for `a⁻`.
    ///
    /// Both directions come pre-sorted out of the CSR indexes — in memory
    /// or paged ([`GraphView::pairs`] walks the backward index for `a⁻`),
    /// so no sort is paid here — only a dedup pass for graphs that keep
    /// parallel edges.
    pub fn of_symbol<'g>(graph: impl Into<GraphView<'g>>, sym: Symbol) -> Relation {
        let mut pairs: Vec<(NodeId, NodeId)> =
            graph.into().pairs(sym.predicate.0, sym.inverse).collect();
        debug_assert!(pairs.is_sorted());
        pairs.dedup();
        Relation { pairs }
    }

    /// Consumes the relation, yielding its sorted pairs.
    pub fn into_pairs(self) -> Vec<(NodeId, NodeId)> {
        self.pairs
    }

    /// The identity relation over all `n` nodes (the ε relation).
    pub fn identity(n: NodeId) -> Relation {
        Relation {
            pairs: (0..n).map(|v| (v, v)).collect(),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs, sorted.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Sort-merge composition `self ; other` = `{(s, u) | (s, t) ∈ self,
    /// (t, u) ∈ other}`.
    pub fn compose(&self, other: &Relation, budget: &Budget) -> Result<Relation, EvalError> {
        // Index `other` by source: it is sorted, so groups are contiguous.
        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        let o = &other.pairs;
        for (i, &(s, t)) in self.pairs.iter().enumerate() {
            if i % 4096 == 0 {
                budget.check_time()?;
            }
            // Find other's group with source == t via binary search.
            let lo = o.partition_point(|&(os, _)| os < t);
            let mut j = lo;
            while j < o.len() && o[j].0 == t {
                out.push((s, o[j].1));
                j += 1;
            }
            budget.check_size(out.len())?;
        }
        Ok(Relation::from_pairs(out))
    }

    /// Union.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut pairs = Vec::with_capacity(self.len() + other.len());
        pairs.extend_from_slice(&self.pairs);
        pairs.extend_from_slice(&other.pairs);
        Relation::from_pairs(pairs)
    }

    /// Reflexive-transitive closure `self*` over `n` nodes via semi-naive
    /// linear recursion: `R0 = id ∪ self`, `Δ ⋈ self` until no new pairs.
    ///
    /// This is the evaluation the SQL translation's `WITH RECURSIVE` CTE
    /// induces; on quadratic-selectivity closures it materializes the full
    /// result, which is exactly why the `P`-style engine blows its budget
    /// on the paper's hardest recursive queries (Table 4).
    pub fn star(&self, n: NodeId, budget: &Budget) -> Result<Relation, EvalError> {
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let mut acc: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 0..n {
            seen.insert(pack(v, v));
            acc.push((v, v));
        }
        let mut delta: Vec<(NodeId, NodeId)> = Vec::new();
        for &(s, t) in &self.pairs {
            if seen.insert(pack(s, t)) {
                delta.push((s, t));
                acc.push((s, t));
            }
        }
        while !delta.is_empty() {
            budget.check_time()?;
            budget.check_size(acc.len())?;
            let d = Relation::from_pairs(std::mem::take(&mut delta));
            let joined = d.compose(self, budget)?;
            for &(s, t) in joined.pairs() {
                if seen.insert(pack(s, t)) {
                    delta.push((s, t));
                    acc.push((s, t));
                }
            }
        }
        Ok(Relation::from_pairs(acc))
    }

    /// Evaluates a whole regular expression by relational algebra:
    /// concatenation ⇒ compose, disjunction ⇒ union, star ⇒ closure.
    ///
    /// Per-symbol relations are collected from the graph on the spot —
    /// the one-off path. Engines evaluating many queries on one graph use
    /// [`Relation::of_expr_ctx`], which borrows the shared, build-once
    /// relations of an [`EvalContext`] instead.
    pub fn of_expr<'g>(
        graph: impl Into<GraphView<'g>>,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let graph = graph.into();
        Relation::of_expr_with(
            &mut |sym| Relation::of_symbol(graph, sym),
            graph.node_count(),
            expr,
            budget,
        )
    }

    /// [`Relation::of_expr`] against a shared [`EvalContext`]: leaf symbol
    /// relations come from the context's per-`(predicate, direction)`
    /// cache, so nothing is re-derived from the graph on the per-query
    /// path.
    pub fn of_expr_ctx(
        ctx: &EvalContext<'_>,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        Relation::of_expr_with(
            &mut |sym| ctx.relation(sym).clone(),
            ctx.view().node_count(),
            expr,
            budget,
        )
    }

    fn of_expr_with(
        leaf: &mut dyn FnMut(Symbol) -> Relation,
        n: NodeId,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let mut union_acc: Option<Relation> = None;
        for path in &expr.disjuncts {
            let r = Relation::of_path_with(leaf, n, path, budget)?;
            union_acc = Some(match union_acc {
                None => r,
                Some(acc) => acc.union(&r),
            });
        }
        let base = union_acc.unwrap_or_default();
        if expr.starred {
            base.star(n, budget)
        } else {
            Ok(base)
        }
    }

    /// Evaluates one concatenation path.
    pub fn of_path<'g>(
        graph: impl Into<GraphView<'g>>,
        path: &PathExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let graph = graph.into();
        Relation::of_path_with(
            &mut |sym| Relation::of_symbol(graph, sym),
            graph.node_count(),
            path,
            budget,
        )
    }

    fn of_path_with(
        leaf: &mut dyn FnMut(Symbol) -> Relation,
        n: NodeId,
        path: &PathExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        if path.is_empty() {
            return Ok(Relation::identity(n));
        }
        let mut acc = leaf(path.0[0]);
        for &sym in &path.0[1..] {
            let next = leaf(sym);
            acc = acc.compose(&next, budget)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    fn chain_graph() -> Graph {
        // a-edges: 0→1→2→3 (a path).
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[4]), 1);
        for (s, t) in [(0, 1), (1, 2), (2, 3)] {
            b.edge(s, 0, t);
        }
        b.build()
    }

    #[test]
    fn symbol_relation_and_inverse() {
        let g = chain_graph();
        let r = Relation::of_symbol(&g, sym(0));
        assert_eq!(r.pairs(), &[(0, 1), (1, 2), (2, 3)]);
        let ri = Relation::of_symbol(&g, sym(0).flipped());
        assert_eq!(ri.pairs(), &[(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn composition() {
        let g = chain_graph();
        let r = Relation::of_symbol(&g, sym(0));
        let rr = r.compose(&r, &Budget::default()).unwrap();
        assert_eq!(rr.pairs(), &[(0, 2), (1, 3)]);
        let rrr = rr.compose(&r, &Budget::default()).unwrap();
        assert_eq!(rrr.pairs(), &[(0, 3)]);
    }

    #[test]
    fn union_dedups() {
        let a = Relation::from_pairs(vec![(0, 1), (1, 2)]);
        let b = Relation::from_pairs(vec![(1, 2), (2, 3)]);
        assert_eq!(a.union(&b).pairs(), &[(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn star_of_chain() {
        let g = chain_graph();
        let r = Relation::of_symbol(&g, sym(0));
        let star = r.star(4, &Budget::default()).unwrap();
        // id ∪ all forward reachabilities on the path.
        let expected = Relation::from_pairs(vec![
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 2),
            (1, 3),
            (0, 3),
        ]);
        assert_eq!(star, expected);
    }

    #[test]
    fn star_agrees_with_automaton() {
        let g = chain_graph();
        let expr = RegularExpr::star(vec![PathExpr(vec![sym(0)])]);
        let via_rel = Relation::of_expr(&g, &expr, &Budget::default()).unwrap();
        let via_nfa = crate::automaton::eval_rpq_pairs(&g, &expr, &Budget::default()).unwrap();
        assert_eq!(via_rel.pairs(), via_nfa.as_slice());
    }

    #[test]
    fn epsilon_path_is_identity() {
        let g = chain_graph();
        let r = Relation::of_path(&g, &PathExpr::epsilon(), &Budget::default()).unwrap();
        assert_eq!(r, Relation::identity(4));
    }

    #[test]
    fn expr_disjunction() {
        let g = chain_graph();
        let expr = RegularExpr::union(vec![PathExpr(vec![sym(0)]), PathExpr(vec![sym(0), sym(0)])]);
        let r = Relation::of_expr(&g, &expr, &Budget::default()).unwrap();
        assert_eq!(r.pairs(), &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn star_budget_enforced() {
        // Complete bipartite-ish blowup: star on a dense relation.
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[50]), 1);
        for s in 0..50u32 {
            for t in 0..50u32 {
                if s != t {
                    b.edge(s, 0, t);
                }
            }
        }
        let g = b.build();
        let r = Relation::of_symbol(&g, sym(0));
        let tight = Budget {
            max_tuples: 100,
            ..Budget::default()
        };
        assert!(matches!(r.star(50, &tight), Err(EvalError::TooLarge(_))));
    }

    #[test]
    fn ctx_expr_matches_direct_expr() {
        let g = chain_graph();
        let ctx = crate::context::EvalContext::new(&g);
        let exprs = [
            RegularExpr::symbol(sym(0)),
            RegularExpr::symbol(sym(0).flipped()),
            RegularExpr::star(vec![PathExpr(vec![sym(0)])]),
            RegularExpr::union(vec![PathExpr(vec![sym(0), sym(0)]), PathExpr::epsilon()]),
        ];
        for expr in exprs {
            assert_eq!(
                Relation::of_expr_ctx(&ctx, &expr, &Budget::default()).unwrap(),
                Relation::of_expr(&g, &expr, &Budget::default()).unwrap(),
                "{expr:?}"
            );
        }
    }

    #[test]
    fn compose_on_empty() {
        let a = Relation::default();
        let b = Relation::from_pairs(vec![(0, 1)]);
        assert!(a.compose(&b, &Budget::default()).unwrap().is_empty());
        assert!(b.compose(&a, &Budget::default()).unwrap().is_empty());
    }
}
