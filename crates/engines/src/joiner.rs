//! Multiway join of conjunct results over shared variables.
//!
//! Every engine that materializes per-conjunct binary relations (the
//! relational and triple-store engines, and the navigational engine's
//! binding propagation) funnels through this module: a [`BindingTable`] of
//! rows over the variables bound so far, extended one conjunct at a time.
//! Conjunct results arrive as shared [`Relation`]s — sorted `u32` pair
//! columns, often straight out of the sub-expression cache — so the
//! extension kernels are search-based, not hash-based: a semi-join is a
//! binary search per row ([`Relation::contains`]), a forward extension a
//! sorted-run lookup ([`Relation::targets_of`]), and a backward extension
//! one sorted `(trg, src)` copy with the same run lookup. No per-conjunct
//! hash index is ever built.

use crate::relations::Relation;
use crate::{Budget, EvalError};
use gmark_core::query::{Rule, Var};
use gmark_store::NodeId;
use std::sync::Arc;

/// Rows over an ordered set of variables.
#[derive(Debug, Clone)]
pub(crate) struct BindingTable {
    pub vars: Vec<Var>,
    pub rows: Vec<Vec<NodeId>>,
}

impl BindingTable {
    fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }
}

/// One conjunct's materialized relation, tagged with its variables. The
/// `Arc` makes a sub-expression cache hit free to mount here — no copy of
/// the pair columns.
#[derive(Debug)]
pub(crate) struct ConjunctPairs {
    pub src: Var,
    pub trg: Var,
    pub pairs: Arc<Relation>,
}

/// Joins conjuncts in the given order into a table over all body variables.
pub(crate) fn join_all(
    conjuncts: Vec<ConjunctPairs>,
    budget: &Budget,
) -> Result<BindingTable, EvalError> {
    let mut table: Option<BindingTable> = None;
    for c in conjuncts {
        budget.check_time()?;
        table = Some(match table {
            None => seed_table(c),
            Some(t) => extend_table(t, c, budget)?,
        });
    }
    Ok(table.unwrap_or(BindingTable {
        vars: Vec::new(),
        rows: vec![Vec::new()],
    }))
}

fn seed_table(c: ConjunctPairs) -> BindingTable {
    if c.src == c.trg {
        // Self-loop conjunct: keep only (v, v) pairs, one column.
        let rows = c
            .pairs
            .pairs()
            .iter()
            .filter(|&&(s, t)| s == t)
            .map(|&(s, _)| vec![s])
            .collect();
        BindingTable {
            vars: vec![c.src],
            rows,
        }
    } else {
        BindingTable {
            vars: vec![c.src, c.trg],
            rows: c.pairs.pairs().iter().map(|&(s, t)| vec![s, t]).collect(),
        }
    }
}

fn extend_table(
    table: BindingTable,
    c: ConjunctPairs,
    budget: &Budget,
) -> Result<BindingTable, EvalError> {
    let src_col = table.col(c.src);
    let trg_col = table.col(c.trg);
    let rel = &*c.pairs;
    match (src_col, trg_col) {
        (Some(sc), Some(tc)) => {
            // Binary-search semi-join: keep rows whose (src, trg) pair is
            // in the sorted conjunct columns.
            let rows = table
                .rows
                .into_iter()
                .filter(|row| rel.contains(row[sc], row[tc]))
                .collect();
            Ok(BindingTable {
                vars: table.vars,
                rows,
            })
        }
        (Some(sc), None) => {
            // Forward extension: each row's source selects its sorted
            // target run directly off the pair columns.
            let mut vars = table.vars;
            vars.push(c.trg);
            let mut rows = Vec::new();
            for row in table.rows {
                let run = rel.targets_of(row[sc]);
                if run.is_empty() {
                    continue;
                }
                for &(_, t) in run {
                    let mut r = row.clone();
                    r.push(t);
                    rows.push(r);
                }
                budget.check_size(rows.len())?;
            }
            Ok(BindingTable { vars, rows })
        }
        (None, Some(tc)) => {
            // Backward extension: one sorted (trg, src) copy of the
            // columns, then the same run lookup per row.
            let mut rev: Vec<(NodeId, NodeId)> = rel.pairs().iter().map(|&(s, t)| (t, s)).collect();
            rev.sort_unstable();
            let mut vars = table.vars;
            vars.push(c.src);
            let mut rows = Vec::new();
            for row in table.rows {
                let lo = rev.partition_point(|&(t, _)| t < row[tc]);
                let hi = lo + rev[lo..].partition_point(|&(t, _)| t == row[tc]);
                if lo == hi {
                    continue;
                }
                for &(_, s) in &rev[lo..hi] {
                    let mut r = row.clone();
                    r.push(s);
                    rows.push(r);
                }
                budget.check_size(rows.len())?;
            }
            Ok(BindingTable { vars, rows })
        }
        (None, None) => {
            // Disconnected: cartesian product (budgeted).
            let mut vars = table.vars;
            let self_loop = c.src == c.trg;
            vars.push(c.src);
            if !self_loop {
                vars.push(c.trg);
            }
            let mut rows = Vec::new();
            for row in &table.rows {
                for &(s, t) in rel.pairs() {
                    if self_loop && s != t {
                        continue;
                    }
                    let mut r = row.clone();
                    r.push(s);
                    if !self_loop {
                        r.push(t);
                    }
                    rows.push(r);
                }
                budget.check_size(rows.len())?;
            }
            Ok(BindingTable { vars, rows })
        }
    }
}

/// Projects a joined table onto a rule's head (deduplicated by the caller
/// through [`crate::Answers::new`]). A Boolean head yields one empty tuple
/// iff any row exists.
///
/// A head variable that never appears in the body violates rule safety;
/// it surfaces as a typed [`EvalError`] — one malformed query becomes a
/// failed matrix cell, not a process abort.
pub(crate) fn project(table: &BindingTable, rule: &Rule) -> Result<Vec<Vec<NodeId>>, EvalError> {
    if rule.head.is_empty() {
        return Ok(if table.rows.is_empty() {
            Vec::new()
        } else {
            vec![Vec::new()]
        });
    }
    let cols: Vec<usize> = rule
        .head
        .iter()
        .map(|v| {
            table.col(*v).ok_or_else(|| {
                EvalError::Unsupported(format!(
                    "head variable {v} is not bound in the rule body (rule safety)"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(table
        .rows
        .iter()
        .map(|row| cols.iter().map(|&c| row[c]).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::{Conjunct, RegularExpr, Symbol};
    use gmark_core::schema::PredicateId;

    fn cp(src: u32, trg: u32, pairs: Vec<(NodeId, NodeId)>) -> ConjunctPairs {
        ConjunctPairs {
            src: Var(src),
            trg: Var(trg),
            pairs: Arc::new(Relation::from_pairs(pairs)),
        }
    }

    fn rule_with_head(head: Vec<u32>) -> Rule {
        // Body content is irrelevant for projection tests beyond var names.
        Rule {
            head: head.into_iter().map(Var).collect(),
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(Symbol::forward(PredicateId(0))),
                trg: Var(1),
            }],
        }
    }

    #[test]
    fn chain_join() {
        let t = join_all(
            vec![
                cp(0, 1, vec![(1, 2), (3, 4)]),
                cp(1, 2, vec![(2, 5), (4, 6), (9, 9)]),
            ],
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(t.vars, vec![Var(0), Var(1), Var(2)]);
        let mut rows = t.rows.clone();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 5], vec![3, 4, 6]]);
    }

    #[test]
    fn reverse_direction_join() {
        // Second conjunct binds its *target* to an existing var.
        let t = join_all(
            vec![
                cp(0, 1, vec![(1, 2)]),
                cp(2, 1, vec![(7, 2), (8, 2), (9, 3)]),
            ],
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(t.vars, vec![Var(0), Var(1), Var(2)]);
        let mut rows = t.rows.clone();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 7], vec![1, 2, 8]]);
    }

    #[test]
    fn semi_join_filters() {
        // Cycle: third conjunct closes 0 → 2.
        let t = join_all(
            vec![
                cp(0, 1, vec![(1, 2), (3, 4)]),
                cp(1, 2, vec![(2, 5), (4, 6)]),
                cp(0, 2, vec![(1, 5)]),
            ],
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(t.rows, vec![vec![1, 2, 5]]);
    }

    #[test]
    fn self_loop_seed() {
        let t = join_all(
            vec![cp(0, 0, vec![(1, 1), (2, 3), (4, 4)])],
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(t.vars, vec![Var(0)]);
        let mut rows = t.rows.clone();
        rows.sort();
        assert_eq!(rows, vec![vec![1], vec![4]]);
    }

    #[test]
    fn cartesian_when_disconnected() {
        let t = join_all(
            vec![cp(0, 1, vec![(1, 2)]), cp(5, 6, vec![(7, 8), (9, 10)])],
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(t.vars, vec![Var(0), Var(1), Var(5), Var(6)]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn projection_and_boolean() {
        let t = join_all(vec![cp(0, 1, vec![(1, 2), (1, 3)])], &Budget::default()).unwrap();
        let p = project(&t, &rule_with_head(vec![1, 0])).unwrap();
        let mut p = p;
        p.sort();
        assert_eq!(p, vec![vec![2, 1], vec![3, 1]]);
        let b = project(&t, &rule_with_head(vec![])).unwrap();
        assert_eq!(b, vec![Vec::<NodeId>::new()]);
        let empty = BindingTable {
            vars: vec![Var(0)],
            rows: vec![],
        };
        assert!(project(&empty, &rule_with_head(vec![])).unwrap().is_empty());
    }

    #[test]
    fn unbound_head_var_is_a_typed_error_not_a_panic() {
        let t = join_all(vec![cp(0, 1, vec![(1, 2)])], &Budget::default()).unwrap();
        let err = project(&t, &rule_with_head(vec![7])).unwrap_err();
        assert!(
            matches!(err, EvalError::Unsupported(ref what) if what.contains("?x7")),
            "{err:?}"
        );
    }

    #[test]
    fn budget_stops_blowup() {
        let pairs: Vec<(NodeId, NodeId)> = (0..1000).map(|i| (0, i)).collect();
        let tight = Budget {
            max_tuples: 100,
            ..Budget::default()
        };
        let r = join_all(
            vec![
                cp(0, 1, vec![(5, 0); 1]),
                cp(1, 2, pairs.clone()),
                cp(2, 3, pairs),
            ],
            &tight,
        );
        assert!(matches!(r, Err(EvalError::TooLarge(_))));
    }
}
