//! A general-purpose semi-naive Datalog engine, and the `D`-style UCRPQ
//! engine built on it.
//!
//! The paper's system `D` is "a modern Datalog engine" — the only system
//! that completed every recursive query of Table 4. This module provides:
//!
//! * a small positive-Datalog core ([`Program`], [`semi_naive`]): relations
//!   of arbitrary arity, rules with repeated variables and constants,
//!   bottom-up evaluation with delta-driven (semi-naive) iteration and
//!   on-demand hash indexes on bound-argument patterns;
//! * [`DatalogEngine`], which translates a UCRPQ into such a program —
//!   structurally the same translation `gmark-translate::datalog` prints —
//!   over the EDB `edge_<p>(X, Y)` / `node(X)` and evaluates it.
//!
//! Semi-naive evaluation re-derives each fact at most once per rule, which
//! keeps recursive closures incremental — the architectural reason `D`
//! outlives `P`/`S` on Table 4's quadratic recursive query.

use crate::relations::Relation;
use crate::{Answers, Budget, Engine, EvalError};
use gmark_core::query::{PathExpr, Query, RegularExpr};
use gmark_store::{GraphView, NodeId};
use rustc_hash::{FxHashMap, FxHashSet};

/// A term: variable (rule-scoped index) or constant (node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule variable.
    Var(u32),
    /// A node constant.
    Const(NodeId),
}

/// A predicate atom `pred(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Interned predicate id (see [`Program::predicate`]).
    pub pred: usize,
    /// Argument terms.
    pub args: Vec<Term>,
}

/// A Datalog rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlRule {
    /// The head atom (IDB predicate, variables only).
    pub head: Atom,
    /// Body atoms (EDB or IDB).
    pub body: Vec<Atom>,
}

/// A positive Datalog program with interned predicate names.
#[derive(Debug, Clone, Default)]
pub struct Program {
    names: Vec<String>,
    by_name: FxHashMap<String, usize>,
    /// The rules.
    pub rules: Vec<DlRule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Interns a predicate name, returning its id.
    pub fn predicate(&mut self, name: &str) -> usize {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an interned predicate.
    pub fn predicate_id(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Predicate name by id.
    pub fn predicate_name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Number of interned predicates.
    pub fn predicate_count(&self) -> usize {
        self.names.len()
    }

    /// Adds a rule.
    pub fn rule(&mut self, head: Atom, body: Vec<Atom>) {
        assert!(!body.is_empty(), "Datalog rules need non-empty bodies");
        self.rules.push(DlRule { head, body });
    }
}

/// Extensional + derived facts, keyed by predicate id.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: FxHashMap<usize, FxHashSet<Vec<NodeId>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a fact; returns whether it was new.
    pub fn insert(&mut self, pred: usize, tuple: Vec<NodeId>) -> bool {
        self.relations.entry(pred).or_default().insert(tuple)
    }

    /// The facts of a predicate (empty set if absent).
    pub fn facts(&self, pred: usize) -> impl Iterator<Item = &Vec<NodeId>> {
        self.relations.get(&pred).into_iter().flatten()
    }

    /// Number of facts for a predicate.
    pub fn count(&self, pred: usize) -> usize {
        self.relations.get(&pred).map_or(0, |s| s.len())
    }

    /// Total number of facts.
    pub fn total(&self) -> usize {
        self.relations.values().map(|s| s.len()).sum()
    }
}

/// Runs semi-naive bottom-up evaluation of `program` over `edb`, returning
/// the database extended with all derivable IDB facts.
pub fn semi_naive(
    program: &Program,
    mut db: Database,
    budget: &Budget,
) -> Result<Database, EvalError> {
    let idb = semi_naive_over(program, &db, budget)?;
    for (pred, facts) in idb.relations {
        db.relations.entry(pred).or_default().extend(facts);
    }
    Ok(db)
}

/// Semi-naive evaluation against a **borrowed** extensional database:
/// derived facts accumulate in a fresh IDB-only [`Database`] which is
/// returned, while `edb` is only read. This is the shared-context hot
/// path — a whole evaluation matrix reuses one EDB built from the graph
/// (see [`crate::EvalContext::edb`]) instead of rebuilding `node(v)` and
/// every `edge_<p>(s, t)` fact per query.
pub fn semi_naive_over(
    program: &Program,
    edb: &Database,
    budget: &Budget,
) -> Result<Database, EvalError> {
    let mut idb = Database::new();
    // IDB predicates = heads of rules.
    let idb_preds: FxHashSet<usize> = program.rules.iter().map(|r| r.head.pred).collect();

    // Predicates whose every defining rule has an IDB-free body are
    // complete after round 0 (the `<p>_step` predicates of closure
    // translations). Against such a stable right side, a linear-recursion
    // delta rule `p(X,Y) :- p(X,Z), step(Z,Y)` is exactly a sorted
    // compose — the same kernel the relational path runs — instead of a
    // hash join.
    let mut rules_of: FxHashMap<usize, Vec<&DlRule>> = FxHashMap::default();
    for rule in &program.rules {
        rules_of.entry(rule.head.pred).or_default().push(rule);
    }
    let stable_after_round0 = |p: usize| {
        rules_of.get(&p).is_none_or(|rs| {
            rs.iter()
                .all(|r| r.body.iter().all(|a| !idb_preds.contains(&a.pred)))
        })
    };
    let rec_step: Vec<Option<usize>> = program
        .rules
        .iter()
        .map(|r| linear_recursion_step(r).filter(|&s| stable_after_round0(s)))
        .collect();
    let mut step_rels: FxHashMap<usize, Relation> = FxHashMap::default();

    // Round 0: evaluate every rule on the full (layered) database.
    // The head's EDB relation is resolved once per rule, outside the
    // per-fact loop; for query programs it is always absent (heads are
    // `ans`/fresh predicates), so the common path pays nothing per fact.
    let mut delta: FxHashMap<usize, FxHashSet<Vec<NodeId>>> = FxHashMap::default();
    for rule in &program.rules {
        let head_edb = edb.relations.get(&rule.head.pred);
        let derived = eval_rule(rule, edb, &idb, None, usize::MAX, budget)?;
        for fact in derived {
            if head_edb.is_none_or(|s| !s.contains(&fact))
                && idb.insert(rule.head.pred, fact.clone())
            {
                delta.entry(rule.head.pred).or_default().insert(fact);
            }
        }
    }

    // Delta-driven rounds: for each rule and each IDB body position, join
    // the delta at that position against the full database elsewhere.
    while !delta.is_empty() {
        budget.check_time()?;
        budget.check_size(edb.total() + idb.total())?;
        let current = std::mem::take(&mut delta);
        for (ri, rule) in program.rules.iter().enumerate() {
            let head_edb = edb.relations.get(&rule.head.pred);
            for (pos, atom) in rule.body.iter().enumerate() {
                if !idb_preds.contains(&atom.pred) {
                    continue;
                }
                let Some(d) = current.get(&atom.pred) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                let derived = if pos == 0 && rec_step[ri].is_some() {
                    // Sorted-kernel fast path: Δp ∘ step.
                    let step = rec_step[ri].expect("checked");
                    let delta_rel = Relation::from_pairs(
                        d.iter()
                            .filter(|f| f.len() == 2)
                            .map(|f| (f[0], f[1]))
                            .collect(),
                    );
                    let composed = {
                        let step_rel = step_rels.entry(step).or_insert_with(|| {
                            Relation::from_pairs(
                                edb.facts(step)
                                    .chain(idb.facts(step))
                                    .filter(|f| f.len() == 2)
                                    .map(|f| (f[0], f[1]))
                                    .collect(),
                            )
                        });
                        delta_rel.compose(step_rel, budget)?
                    };
                    composed.pairs().iter().map(|&(x, y)| vec![x, y]).collect()
                } else {
                    eval_rule(rule, edb, &idb, Some((pos, d)), usize::MAX, budget)?
                };
                for fact in derived {
                    if head_edb.is_none_or(|s| !s.contains(&fact))
                        && idb.insert(rule.head.pred, fact.clone())
                    {
                        delta.entry(rule.head.pred).or_default().insert(fact);
                    }
                }
            }
        }
    }
    Ok(idb)
}

/// Recognizes the canonical linear-recursion shape
/// `p(X, Y) :- p(X, Z), s(Z, Y)` with `X`, `Y`, `Z` distinct variables,
/// returning the step predicate `s`. The caller still has to prove `s`
/// stable before substituting a compose for the hash join.
fn linear_recursion_step(rule: &DlRule) -> Option<usize> {
    if rule.body.len() != 2 {
        return None;
    }
    let [Term::Var(x), Term::Var(y)] = rule.head.args[..] else {
        return None;
    };
    let rec = &rule.body[0];
    let step = &rule.body[1];
    if rec.pred != rule.head.pred {
        return None;
    }
    let [Term::Var(rx), Term::Var(z)] = rec.args[..] else {
        return None;
    };
    let [Term::Var(sz), Term::Var(sy)] = step.args[..] else {
        return None;
    };
    if x == y || z == x || z == y || rx != x || sz != z || sy != y {
        return None;
    }
    Some(step.pred)
}

/// Hash key over the probed argument values of an atom: packed into a
/// `u128` for up to four probe positions (the overwhelmingly common case —
/// UCRPQ programs only have unary and binary atoms), falling back to an
/// owned vector for wide atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ProbeKey {
    Packed(u128),
    Wide(Vec<NodeId>),
}

fn probe_key(values: impl ExactSizeIterator<Item = NodeId> + Clone) -> ProbeKey {
    if values.len() <= 4 {
        let mut k: u128 = 1; // avoid collision between [0] and [0, 0]
        for v in values {
            k = (k << 32) | v as u128;
        }
        ProbeKey::Packed(k)
    } else {
        ProbeKey::Wide(values.collect())
    }
}

/// Evaluates one rule body left-to-right over the layered `edb` + `idb`
/// fact database. When `delta_at = Some((i, Δ))`, atom `i` ranges over `Δ`
/// instead of the full relation (the semi-naive restriction).
///
/// Bindings are flat fixed-width rows over a precomputed variable→slot
/// layout (no per-row maps — this is the hot loop of the engine; the
/// paper's system `D` wins Table 4 precisely because its recursive joins
/// stay cheap).
fn eval_rule(
    rule: &DlRule,
    edb: &Database,
    idb: &Database,
    delta_at: Option<(usize, &FxHashSet<Vec<NodeId>>)>,
    limit: usize,
    budget: &Budget,
) -> Result<Vec<Vec<NodeId>>, EvalError> {
    // Variable → slot layout, in first occurrence order across the body.
    let mut slot_of: FxHashMap<u32, usize> = FxHashMap::default();
    for atom in &rule.body {
        for t in &atom.args {
            if let Term::Var(v) = t {
                let n = slot_of.len();
                slot_of.entry(*v).or_insert(n);
            }
        }
    }
    let width = slot_of.len().max(1);

    // Flat row storage: `rows` holds `count` rows of `width` node ids.
    let mut rows: Vec<NodeId> = vec![0; width];
    let mut count: usize = 1;
    let mut bound: Vec<bool> = vec![false; width];

    for (pos, atom) in rule.body.iter().enumerate() {
        budget.check_time()?;
        // Classify argument positions against the current bound set.
        // probes: positions whose value is determined by the row (bound
        // vars and constants); binds: first occurrences of unbound vars;
        // intra: later occurrences of a variable bound earlier *within
        // this same atom* (must equal the earlier position's value).
        let mut probes: Vec<(usize, Option<usize>, NodeId)> = Vec::new(); // (arg, slot?, const)
        let mut binds: Vec<(usize, usize)> = Vec::new(); // (arg, slot)
        let mut intra: Vec<(usize, usize)> = Vec::new(); // (arg, earlier arg)
        let mut seen_here: FxHashMap<u32, usize> = FxHashMap::default();
        for (i, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => probes.push((i, None, *c)),
                Term::Var(v) => {
                    let slot = slot_of[v];
                    if let Some(&earlier) = seen_here.get(v) {
                        intra.push((i, earlier));
                    } else if bound[slot] {
                        probes.push((i, Some(slot), 0));
                        seen_here.insert(*v, i);
                    } else {
                        binds.push((i, slot));
                        seen_here.insert(*v, i);
                    }
                }
            }
        }

        // Index the atom's facts by their probe-position values; store the
        // bind-position values inline (flat, stride = binds.len()).
        let use_delta = matches!(delta_at, Some((p, _)) if p == pos);
        let mut index: FxHashMap<ProbeKey, Vec<u32>> = FxHashMap::default();
        let mut bind_values: Vec<NodeId> = Vec::new();
        let stride = binds.len();
        let mut add_fact = |f: &Vec<NodeId>| {
            if f.len() != atom.args.len() {
                return;
            }
            for &(i, earlier) in &intra {
                if f[i] != f[earlier] {
                    return;
                }
            }
            // Constant probes filter here; slot probes key below.
            for &(i, slot, c) in &probes {
                if slot.is_none() && f[i] != c {
                    return;
                }
            }
            let key = probe_key(
                probes
                    .iter()
                    .filter(|(_, slot, _)| slot.is_some())
                    .map(|&(i, _, _)| f[i])
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
            let entry_idx = (bind_values.len() / stride.max(1)) as u32;
            for &(i, _) in &binds {
                bind_values.push(f[i]);
            }
            index.entry(key).or_default().push(entry_idx);
        };
        if use_delta {
            for f in delta_at.expect("checked").1 {
                add_fact(f);
            }
        } else {
            // EDB facts first, then derived ones; the layers are disjoint
            // (inserts into the IDB check the EDB), so no fact repeats.
            for f in edb.facts(atom.pred).chain(idb.facts(atom.pred)) {
                add_fact(f);
            }
        }

        // Join the current rows against the index.
        let slot_probes: Vec<usize> = probes.iter().filter_map(|&(_, slot, _)| slot).collect();
        let mut next: Vec<NodeId> = Vec::new();
        let mut next_count: usize = 0;
        for r in 0..count {
            let row = &rows[r * width..(r + 1) * width];
            let key = probe_key(
                slot_probes
                    .iter()
                    .map(|&s| row[s])
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
            if let Some(matches) = index.get(&key) {
                for &entry_idx in matches {
                    let base = entry_idx as usize * stride;
                    next.extend_from_slice(row);
                    let new_row_start = next.len() - width;
                    for (bi, &(_, slot)) in binds.iter().enumerate() {
                        next[new_row_start + slot] = bind_values[base + bi];
                    }
                    next_count += 1;
                    if next_count >= limit {
                        break;
                    }
                }
            }
            if r % 1024 == 0 {
                budget.check_time()?;
            }
            budget.check_size(next_count)?;
        }
        for (_, slot) in &binds {
            bound[*slot] = true;
        }
        rows = next;
        count = next_count;
        if count == 0 {
            return Ok(Vec::new());
        }
    }

    // Project onto the head.
    let mut out = Vec::with_capacity(count);
    for r in 0..count {
        let row = &rows[r * width..(r + 1) * width];
        let fact: Vec<NodeId> = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => row[slot_of[v]],
            })
            .collect();
        out.push(fact);
    }
    Ok(out)
}

/// Builds the EDB for a graph: `edge_<p>(s, t)` per predicate plus `node(v)`.
pub fn graph_edb<'g>(graph: impl Into<GraphView<'g>>, program: &mut Program) -> Database {
    let graph = graph.into();
    let mut db = Database::new();
    let node = program.predicate("node");
    for v in 0..graph.node_count() {
        db.insert(node, vec![v]);
    }
    for p in 0..graph.predicate_count() {
        let pred = program.predicate(&format!("edge_{p}"));
        for (s, t) in graph.pairs(p, false) {
            db.insert(pred, vec![s, t]);
        }
    }
    db
}

/// Translates a UCRPQ into a Datalog program with answer predicate `ans`
/// (structurally identical to the textual translation in
/// `gmark-translate::datalog`).
pub fn program_from_query(query: &Query) -> Program {
    let mut prog = Program::new();
    append_query_rules(&mut prog, query);
    prog
}

/// Appends a UCRPQ's rules to an existing program — typically a clone of
/// the shared-context base program whose `node`/`edge_<p>` ids already
/// match a prebuilt EDB — returning the interned `ans` predicate id.
/// Predicates already interned (by name) are reused, so the EDB facts and
/// the query rules agree on ids without rebuilding either.
pub fn append_query_rules(prog: &mut Program, query: &Query) -> usize {
    append_query_rules_planned(prog, query, None)
}

/// Like [`append_query_rules`], but with the `ans` rule bodies ordered by
/// a [`crate::planner::QueryPlan`] when one is given. Semi-naive
/// evaluation joins body atoms left to right, so the planner's
/// selective-first order bounds the intermediate binding sets the same
/// way it does for the other engines; the auxiliary path/closure rules
/// are emitted identically in both modes (only the `ans` body atom order
/// differs), and the answers never change.
pub fn append_query_rules_planned(
    prog: &mut Program,
    query: &Query,
    plan: Option<&crate::planner::QueryPlan>,
) -> usize {
    let node = prog.predicate("node");
    let ans = prog.predicate("ans");
    let mut fresh = 0usize;

    // Emits rules defining `pred(X, Y)` as one path expression.
    fn path_rules(prog: &mut Program, node: usize, head_pred: usize, p: &PathExpr) {
        if p.is_empty() {
            prog.rule(
                Atom {
                    pred: head_pred,
                    args: vec![Term::Var(0), Term::Var(0)],
                },
                vec![Atom {
                    pred: node,
                    args: vec![Term::Var(0)],
                }],
            );
            return;
        }
        // X = var 0, Y = var 1, intermediates from 2 up.
        let mut body = Vec::with_capacity(p.len());
        for (i, sym) in p.0.iter().enumerate() {
            let from = if i == 0 {
                Term::Var(0)
            } else {
                Term::Var(i as u32 + 1)
            };
            let to = if i + 1 == p.len() {
                Term::Var(1)
            } else {
                Term::Var(i as u32 + 2)
            };
            let edge = prog.predicate(&format!("edge_{}", sym.predicate.0));
            let args = if sym.inverse {
                vec![to, from]
            } else {
                vec![from, to]
            };
            body.push(Atom { pred: edge, args });
        }
        prog.rule(
            Atom {
                pred: head_pred,
                args: vec![Term::Var(0), Term::Var(1)],
            },
            body,
        );
    }

    fn expr_pred(prog: &mut Program, node: usize, fresh: &mut usize, expr: &RegularExpr) -> usize {
        let name = format!("p{}", *fresh);
        *fresh += 1;
        let pred = prog.predicate(&name);
        if expr.starred {
            let step = prog.predicate(&format!("{name}_step"));
            for d in &expr.disjuncts {
                path_rules(prog, node, step, d);
            }
            // p(X, X) :- node(X).
            prog.rule(
                Atom {
                    pred,
                    args: vec![Term::Var(0), Term::Var(0)],
                },
                vec![Atom {
                    pred: node,
                    args: vec![Term::Var(0)],
                }],
            );
            // p(X, Y) :- p(X, Z), step(Z, Y).
            prog.rule(
                Atom {
                    pred,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
                vec![
                    Atom {
                        pred,
                        args: vec![Term::Var(0), Term::Var(2)],
                    },
                    Atom {
                        pred: step,
                        args: vec![Term::Var(2), Term::Var(1)],
                    },
                ],
            );
        } else {
            for d in &expr.disjuncts {
                path_rules(prog, node, pred, d);
            }
        }
        pred
    }

    for (ri, rule) in query.rules.iter().enumerate() {
        // Auxiliary expression predicates are interned in declaration
        // order regardless of the plan; only the `ans` body atom order
        // follows it.
        let preds: Vec<usize> = rule
            .body
            .iter()
            .map(|c| expr_pred(prog, node, &mut fresh, &c.expr))
            .collect();
        let order: Vec<usize> = plan
            .and_then(|p| p.rule_order(ri, rule.body.len()))
            .map(|o| o.into_iter().map(|(ci, _)| ci).collect())
            .unwrap_or_else(|| (0..rule.body.len()).collect());
        let body: Vec<Atom> = order
            .into_iter()
            .map(|ci| {
                let c = &rule.body[ci];
                Atom {
                    pred: preds[ci],
                    args: vec![Term::Var(c.src.0), Term::Var(c.trg.0)],
                }
            })
            .collect();
        let head_args: Vec<Term> = rule.head.iter().map(|v| Term::Var(v.0)).collect();
        prog.rule(
            Atom {
                pred: ans,
                args: head_args,
            },
            body,
        );
    }
    ans
}

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatalogEngine;

impl Engine for DatalogEngine {
    fn name(&self) -> &'static str {
        "D/datalog"
    }

    fn evaluate_ctx(
        &self,
        ctx: &crate::EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        self.evaluate_planned(ctx, query, None, budget)
    }

    fn evaluate_planned(
        &self,
        ctx: &crate::EvalContext<'_>,
        query: &Query,
        plan: Option<&crate::planner::QueryPlan>,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        // The per-query program extends a clone of the base program (a
        // handful of interned names) while the EDB facts — the expensive
        // part — stay borrowed from the shared context.
        //
        // Deliberately NOT a consumer of the shared sub-expression cache:
        // semi-naive evaluation charges the budget for auxiliary
        // predicates and raw (pre-dedup) join products that a seeded fact
        // set would never materialize, so a cache hit could complete a
        // cell whose uncached evaluation reports too-large — breaking the
        // cache's outcome-identity contract (see the context module docs).
        // The closure-heavy cells the cache targets are served here by the
        // sorted-kernel fast path of [`semi_naive_over`] instead.
        let (base, edb) = ctx.edb();
        let mut program = base.clone();
        let ans = append_query_rules_planned(&mut program, query, plan);
        let idb = semi_naive_over(&program, edb, budget)?;
        let tuples: Vec<Vec<NodeId>> = idb.facts(ans).cloned().collect();
        Ok(Answers::new(query.arity(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalEngine;
    use gmark_core::query::{Conjunct, Rule, Symbol, Var};
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    /// Classic ancestor test for the generic engine.
    #[test]
    fn transitive_closure_program() {
        let mut prog = Program::new();
        let edge = prog.predicate("edge");
        let path = prog.predicate("path");
        // path(X,Y) :- edge(X,Y).  path(X,Y) :- path(X,Z), edge(Z,Y).
        prog.rule(
            Atom {
                pred: path,
                args: vec![Term::Var(0), Term::Var(1)],
            },
            vec![Atom {
                pred: edge,
                args: vec![Term::Var(0), Term::Var(1)],
            }],
        );
        prog.rule(
            Atom {
                pred: path,
                args: vec![Term::Var(0), Term::Var(1)],
            },
            vec![
                Atom {
                    pred: path,
                    args: vec![Term::Var(0), Term::Var(2)],
                },
                Atom {
                    pred: edge,
                    args: vec![Term::Var(2), Term::Var(1)],
                },
            ],
        );
        let mut db = Database::new();
        for (s, t) in [(0u32, 1u32), (1, 2), (2, 3)] {
            db.insert(edge, vec![s, t]);
        }
        let db = semi_naive(&prog, db, &Budget::default()).unwrap();
        assert_eq!(db.count(path), 6); // chain of 4 nodes: 3+2+1 pairs
        let mut facts: Vec<_> = db.facts(path).cloned().collect();
        facts.sort();
        assert_eq!(
            facts,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn constants_and_repeated_vars() {
        let mut prog = Program::new();
        let edge = prog.predicate("edge");
        let loops = prog.predicate("self_loop");
        let from_zero = prog.predicate("from_zero");
        // self_loop(X) :- edge(X, X).
        prog.rule(
            Atom {
                pred: loops,
                args: vec![Term::Var(0)],
            },
            vec![Atom {
                pred: edge,
                args: vec![Term::Var(0), Term::Var(0)],
            }],
        );
        // from_zero(Y) :- edge(0, Y).
        prog.rule(
            Atom {
                pred: from_zero,
                args: vec![Term::Var(0)],
            },
            vec![Atom {
                pred: edge,
                args: vec![Term::Const(0), Term::Var(0)],
            }],
        );
        let mut db = Database::new();
        for (s, t) in [(0u32, 1u32), (1, 1), (2, 2), (0, 3)] {
            db.insert(edge, vec![s, t]);
        }
        let db = semi_naive(&prog, db, &Budget::default()).unwrap();
        let mut l: Vec<_> = db.facts(loops).cloned().collect();
        l.sort();
        assert_eq!(l, vec![vec![1], vec![2]]);
        let mut f: Vec<_> = db.facts(from_zero).cloned().collect();
        f.sort();
        assert_eq!(f, vec![vec![1], vec![3]]);
    }

    #[test]
    fn mutual_recursion() {
        // even(X) :- zero(X). even(Y) :- odd(X), succ(X,Y).
        // odd(Y) :- even(X), succ(X,Y).
        let mut prog = Program::new();
        let zero = prog.predicate("zero");
        let succ = prog.predicate("succ");
        let even = prog.predicate("even");
        let odd = prog.predicate("odd");
        prog.rule(
            Atom {
                pred: even,
                args: vec![Term::Var(0)],
            },
            vec![Atom {
                pred: zero,
                args: vec![Term::Var(0)],
            }],
        );
        prog.rule(
            Atom {
                pred: even,
                args: vec![Term::Var(1)],
            },
            vec![
                Atom {
                    pred: odd,
                    args: vec![Term::Var(0)],
                },
                Atom {
                    pred: succ,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
        );
        prog.rule(
            Atom {
                pred: odd,
                args: vec![Term::Var(1)],
            },
            vec![
                Atom {
                    pred: even,
                    args: vec![Term::Var(0)],
                },
                Atom {
                    pred: succ,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
        );
        let mut db = Database::new();
        db.insert(zero, vec![0]);
        for i in 0..10u32 {
            db.insert(succ, vec![i, i + 1]);
        }
        let db = semi_naive(&prog, db, &Budget::default()).unwrap();
        let evens: FxHashSet<u32> = db.facts(even).map(|f| f[0]).collect();
        let odds: FxHashSet<u32> = db.facts(odd).map(|f| f[0]).collect();
        assert_eq!(evens, (0..=10).filter(|i| i % 2 == 0).collect());
        assert_eq!(odds, (0..=10).filter(|i| i % 2 == 1).collect());
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[5]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1), (4, 2)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3), (0, 4)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn chain(exprs: Vec<RegularExpr>) -> Query {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    }

    #[test]
    fn ucrpq_agrees_with_relational() {
        use gmark_core::query::PathExpr;
        let cases = vec![
            chain(vec![RegularExpr::symbol(sym(0))]),
            chain(vec![RegularExpr::symbol(sym(1).flipped())]),
            chain(vec![
                RegularExpr::path(PathExpr(vec![sym(0), sym(1)])),
                RegularExpr::symbol(sym(0).flipped()),
            ]),
            chain(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]),
            chain(vec![RegularExpr::star(vec![
                PathExpr(vec![sym(0), sym(1).flipped()]),
                PathExpr(vec![sym(1)]),
            ])]),
        ];
        for q in cases {
            let a = DatalogEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            let b = RelationalEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            assert_eq!(a, b, "mismatch on {q:?}");
        }
    }

    #[test]
    fn boolean_query() {
        let q = Query::single(Rule {
            head: vec![],
            body: vec![Conjunct {
                src: Var(0),
                expr: RegularExpr::symbol(sym(0)),
                trg: Var(1),
            }],
        })
        .unwrap();
        let a = DatalogEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert!(a.non_empty());
    }

    #[test]
    fn budget_enforced() {
        use gmark_core::query::PathExpr;
        let q = chain(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]);
        let tight = Budget {
            max_tuples: 5,
            ..Budget::default()
        };
        assert!(DatalogEngine.evaluate(&graph(), &q, &tight).is_err());
    }
}
