//! The shared, immutable evaluation context.
//!
//! Before this module existed, every engine re-derived its own view of the
//! graph *per query*: the relational engine collected and sorted one edge
//! list per symbol occurrence, the Datalog engine rebuilt the whole EDB
//! (`node(v)`, `edge_<p>(s, t)`) from scratch, and the automaton engines
//! recompiled NFAs for expressions they had already seen. An
//! [`EvalContext`] computes each of these **at most once per graph** and
//! lends them to all four engines — the "one context, many query backends"
//! shape of a server, and the schema-wide precomputation that
//! schema-based query optimisation exploits:
//!
//! * [`EvalContext::relation`] — the sorted, deduplicated binary relation
//!   of a `Σ±` symbol (forward or inverse), built lazily per
//!   `(predicate, direction)` and shared by reference;
//! * [`EvalContext::edb`] — the Datalog extensional database plus the base
//!   program interning `node` and every `edge_<p>`, built lazily once;
//!   per-query programs extend a clone of the (tiny) base program while
//!   borrowing the (large) fact database;
//! * [`EvalContext::nfa`] — a memoized [`compile_nfa`], keyed by the
//!   regular expression;
//! * [`EvalContext::cardinality`] — per-predicate edge counts (an O(1)
//!   read off the CSR), the convenience input for cardinality-driven
//!   planning in harness code;
//! * [`EvalContext::symbol_stats`] — distinct-source/distinct-target
//!   counts per `(predicate, direction)`, the planner's selectivity
//!   input, computed once off the CSR degree arrays and shared.
//!
//! The context is `Sync`: lazy slots are [`OnceLock`]s whose values are
//! pure functions of the graph, and the NFA cache is a mutex around a
//! memo table — so concurrent initialization from the matrix harness's
//! workers is race-free and cannot affect any observable result.
//!
//! # The sub-expression result cache
//!
//! gMark workloads are generated from a small schema, so the 30 queries
//! of a scenario overlap heavily in sub-expressions: the same
//! `authoredBy⁻` closure shows up in a dozen conjuncts across the
//! matrix. The context therefore carries a bounded **sub-expression
//! result cache** ([`EvalContext::fill_expr_cache`] /
//! [`EvalContext::cached_expr`]): materialized [`Relation`]s keyed by
//! the canonical [`RegularExpr`] form of a sub-expression — single
//! symbols, concatenation prefixes (`RegularExpr::path` of the prefix),
//! unions, and above all `p*` closures, which dominate the
//! timeout/too-large cells.
//!
//! Determinism is by construction, not by luck: the cache is filled
//! **exactly once, single-threaded, before any cell clock starts** (the
//! same warm-up phase that builds symbol relations), and matrix cells
//! are strictly read-only consumers. Contents are therefore a pure
//! function of `(graph, fill expression list, tuple cap, byte budget)`,
//! and no cell outcome can depend on hit order or thread schedule. The
//! budget rule for a hit is equally fixed: a hit charges the cached
//! *cardinality check* only — `Budget::check_size(len)` — never wall
//! time (see [`EvalContext::cached_expr`]). Failed fills are cached
//! only for the deterministic failure ([`EvalError::TooLarge`]);
//! wall-clock timeouts are machine artifacts and are never cached.
//! Negative entries are authoritative **only for the sorted-kernel path**
//! ([`EvalContext::expr_relation`], which re-runs the exact computation
//! the fill ran): probe-style consumers ([`EvalContext::cached_expr`])
//! treat them as misses, because their native strategies — automaton
//! BFS, seed-driven navigation — never materialize the kernels'
//! intermediate relations and may legitimately succeed where the fill
//! blew the cap.
//!
//! The Datalog engine deliberately consumes no cache at all: semi-naive
//! evaluation charges its budget for auxiliary predicates and raw
//! pre-dedup join products, charges a fact-seeded cached result would
//! skip — so a hit could flip a too-large cell to ok, violating the
//! outcome-identity contract above. Its closure-heavy cells get their
//! speedup from the sorted-kernel fast path inside the semi-naive delta
//! loop instead ([`crate::datalog::semi_naive_over`]).

use crate::automaton::{compile_nfa, Nfa};
use crate::datalog::{graph_edb, Database, Program};
use crate::relations::Relation;
use crate::{Budget, EvalError};
use gmark_core::query::{PathExpr, RegularExpr, Symbol};
use gmark_store::GraphView;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything the four engines would otherwise re-derive from the graph on
/// every query, computed at most once and borrowed by every
/// (engine × query) cell. See the module docs.
///
/// The context is built over a [`GraphView`], so the same engines evaluate
/// either the in-memory CSR [`Graph`](gmark_store::Graph) or the on-disk
/// paged store ([`gmark_store::StoreReader`]) — `EvalContext::new(&graph)`
/// and `EvalContext::new(&reader)` both work.
#[derive(Debug)]
pub struct EvalContext<'g> {
    view: GraphView<'g>,
    /// Lazy forward relation per predicate.
    fwd: Vec<OnceLock<Relation>>,
    /// Lazy inverse relation per predicate.
    bwd: Vec<OnceLock<Relation>>,
    /// Lazy Datalog base program (`node`, `edge_<p>`) and EDB facts.
    edb: OnceLock<(Program, Database)>,
    /// Memoized compiled automata, keyed by expression.
    nfas: Mutex<FxHashMap<RegularExpr, Arc<Nfa>>>,
    /// Lazy per-predicate `(distinct sources, distinct targets)` counts.
    stats: Vec<OnceLock<(usize, usize)>>,
    /// The sub-expression result cache, set once by
    /// [`EvalContext::fill_expr_cache`] and read-only afterwards (see the
    /// module docs for the determinism argument).
    expr_cache: OnceLock<ExprCache>,
    /// Top-level cache probes that found an entry.
    cache_hits: AtomicU64,
    /// Top-level cache probes that found nothing.
    cache_misses: AtomicU64,
}

/// One immutable entry of the sub-expression cache.
#[derive(Debug)]
enum ExprCacheEntry {
    /// The materialized relation, shared by `Arc` with every consumer.
    Hit(Arc<Relation>),
    /// Filling this expression deterministically exceeded the tuple cap,
    /// with the recorded size of the first over-cap check. Served as a
    /// fast [`EvalError::TooLarge`] to *kernel-path* consumers
    /// ([`EvalContext::expr_relation`]) whose own cap is below that size
    /// — the same kernels would fail at the same check. Probe-style
    /// consumers treat it as a miss (see the module docs).
    TooLarge(usize),
}

/// The filled cache: a frozen map plus its fill-time accounting.
#[derive(Debug)]
struct ExprCache {
    map: FxHashMap<RegularExpr, ExprCacheEntry>,
    /// Admission byte budget (`budget_mb` MiB) and what is used of it.
    budget_mb: usize,
    bytes: usize,
    /// Sum of cached relation cardinalities.
    tuples: u64,
    /// Relations computed during fill but not admitted because the byte
    /// budget was exhausted.
    rejected: u64,
    /// Relations computed during the pre-clock fill (admitted, rejected,
    /// or negatively cached). The hit/miss probe counters never see these
    /// builds — without this figure a fully pre-filled run reports a
    /// meaningless 100% hit rate.
    fills: u64,
    /// The tuple cap the fill ran under ([`ExprCacheEntry::TooLarge`]
    /// entries are only meaningful relative to it).
    cap: usize,
}

impl ExprCache {
    fn new(budget_mb: usize, cap: usize) -> ExprCache {
        ExprCache {
            map: FxHashMap::default(),
            budget_mb,
            bytes: 0,
            tuples: 0,
            rejected: 0,
            fills: 0,
            cap,
        }
    }

    /// Admits a computed relation under the byte budget; duplicates are
    /// ignored, over-budget relations counted as rejected. Deterministic:
    /// admission depends only on the (deterministic) fill order.
    fn admit(&mut self, key: RegularExpr, rel: Relation) {
        if self.map.contains_key(&key) {
            return;
        }
        self.fills += 1;
        let bytes = rel.heap_bytes();
        if self.bytes + bytes > self.budget_mb * 1024 * 1024 {
            self.rejected += 1;
            return;
        }
        self.bytes += bytes;
        self.tuples += rel.len() as u64;
        self.map.insert(key, ExprCacheEntry::Hit(Arc::new(rel)));
    }
}

/// Fill-time contents and run-time hit accounting of the sub-expression
/// cache, as reported in `summary.json` and the bench rows. Every field
/// is deterministic: contents are fixed at fill time, and hit/miss totals
/// are sums of per-cell counts that do not depend on thread schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Admission budget in MiB.
    pub budget_mb: usize,
    /// Entries in the cache (including negative too-large entries).
    pub entries: usize,
    /// Sum of cached relation cardinalities.
    pub tuples: u64,
    /// Bytes used by cached pair columns.
    pub bytes: usize,
    /// Top-level probes that found an entry.
    pub hits: u64,
    /// Top-level probes that found nothing.
    pub misses: u64,
    /// Fill-time admissions skipped because the byte budget was full.
    pub rejected: u64,
    /// Relations computed during the pre-clock fill (admitted, rejected,
    /// or negatively cached). These builds happen before any cell's clock
    /// starts, so the hit/miss probe counters never see them — a hit rate
    /// that ignores fills reads 100% on a fully pre-filled run. Honest
    /// rates divide hits by `hits + misses + fills`.
    pub fills: u64,
}

/// Statistics of one `Σ±` symbol: how many edges carry its predicate and
/// how many distinct nodes appear on each side (in the symbol's own
/// direction — an inverse symbol sees the forward counts swapped). These
/// are the per-symbol inputs of the cost model in [`crate::planner`]; like
/// the sorted relations they are computed lazily per predicate, shared
/// across engines, and pre-warmable so no matrix cell is ever billed for
/// their construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolStats {
    /// Number of edges labeled with the symbol's predicate.
    pub edges: usize,
    /// Distinct nodes with at least one outgoing such edge (in symbol
    /// direction).
    pub distinct_src: usize,
    /// Distinct nodes with at least one incoming such edge (in symbol
    /// direction).
    pub distinct_trg: usize,
}

impl<'g> EvalContext<'g> {
    /// Wraps a graph view (either `&Graph` or `&StoreReader` coerces).
    /// Cheap: every index is initialized lazily on first use, so a context
    /// built for one triple-store query never pays for the Datalog EDB.
    pub fn new(view: impl Into<GraphView<'g>>) -> EvalContext<'g> {
        let view = view.into();
        let preds = view.predicate_count();
        EvalContext {
            view,
            fwd: (0..preds).map(|_| OnceLock::new()).collect(),
            bwd: (0..preds).map(|_| OnceLock::new()).collect(),
            edb: OnceLock::new(),
            nfas: Mutex::new(FxHashMap::default()),
            stats: (0..preds).map(|_| OnceLock::new()).collect(),
            expr_cache: OnceLock::new(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// The underlying graph view.
    #[inline]
    pub fn view(&self) -> GraphView<'g> {
        self.view
    }

    /// Number of `pred`-labeled edges (the planner's cardinality input;
    /// an O(1) read off the forward CSR or the store directory).
    #[inline]
    pub fn cardinality(&self, pred: usize) -> usize {
        self.view.edge_count_for(pred)
    }

    /// The sorted binary relation of one `Σ±` symbol, computed on first
    /// use for its `(predicate, direction)` slot and shared afterwards.
    pub fn relation(&self, sym: Symbol) -> &Relation {
        let slot = if sym.inverse {
            &self.bwd[sym.predicate.0]
        } else {
            &self.fwd[sym.predicate.0]
        };
        slot.get_or_init(|| Relation::of_symbol(self.view, sym))
    }

    /// The distinct-endpoint statistics of one `Σ±` symbol, computed on
    /// first use for its predicate (one offsets sweep, no target pages)
    /// and shared by both directions — the inverse symbol returns the same
    /// counts with source and target swapped.
    pub fn symbol_stats(&self, sym: Symbol) -> SymbolStats {
        let p = sym.predicate.0;
        let &(src, trg) = self.stats[p].get_or_init(|| self.view.distinct_endpoints(p));
        let edges = self.view.edge_count_for(p);
        if sym.inverse {
            SymbolStats {
                edges,
                distinct_src: trg,
                distinct_trg: src,
            }
        } else {
            SymbolStats {
                edges,
                distinct_src: src,
                distinct_trg: trg,
            }
        }
    }

    /// The compiled NFA of a regular expression, memoized per context.
    pub fn nfa(&self, expr: &RegularExpr) -> Arc<Nfa> {
        let mut cache = self.nfas.lock().expect("no panics while compiling NFAs");
        if let Some(nfa) = cache.get(expr) {
            return Arc::clone(nfa);
        }
        let nfa = Arc::new(compile_nfa(expr));
        cache.insert(expr.clone(), Arc::clone(&nfa));
        nfa
    }

    /// Fills the sub-expression result cache, once. Must be called from
    /// exactly one thread **before** any matrix cell runs (the harness
    /// does this in its warm-up phase); later calls are no-ops, so the
    /// cache never mutates under concurrent readers.
    ///
    /// `exprs` is the deterministic enumeration of candidate
    /// sub-expressions (the harness walks queries in order); each is
    /// evaluated under a fresh budget from `fresh_budget` (the same
    /// recipe as a matrix cell, so nothing enters the cache that a cell
    /// could not have computed itself). Concatenation prefixes discovered
    /// on the way are admitted too, keyed by their canonical
    /// [`RegularExpr::path`] form. `budget_mb` bounds admitted pair-column
    /// bytes; `0` disables the cache entirely (nothing is even frozen, so
    /// [`EvalContext::cached_expr`] stays on its no-cache fast path).
    pub fn fill_expr_cache<F>(&self, exprs: &[RegularExpr], budget_mb: usize, mut fresh_budget: F)
    where
        F: FnMut() -> Budget,
    {
        if budget_mb == 0 || self.expr_cache.get().is_some() {
            return;
        }
        let mut cache = ExprCache::new(budget_mb, fresh_budget().max_tuples);
        for expr in exprs {
            if cache.map.contains_key(expr) {
                continue;
            }
            let budget = fresh_budget();
            match self.fill_expr(&mut cache, expr, &budget) {
                Ok(rel) => cache.admit(expr.clone(), rel),
                Err(EvalError::TooLarge(sz)) => {
                    // Deterministic failure under the cap: cache it so no
                    // cell re-derives the blow-up four times. The doomed
                    // computation still ran once — it counts as a fill.
                    cache.fills += 1;
                    cache.map.insert(expr.clone(), ExprCacheEntry::TooLarge(sz));
                }
                // Timeouts (and anything else wall-clock-shaped) are
                // machine artifacts — never cached.
                Err(_) => {}
            }
        }
        let _ = self.expr_cache.set(cache);
    }

    /// Evaluates one expression during fill, reusing and admitting
    /// concatenation prefixes as it goes.
    fn fill_expr(
        &self,
        cache: &mut ExprCache,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        let n = self.view.node_count();
        let mut acc: Option<Relation> = None;
        for path in &expr.disjuncts {
            let r = self.fill_path(cache, path, budget)?;
            acc = Some(match acc {
                None => r,
                Some(a) => a.union(&r),
            });
        }
        let base = acc.unwrap_or_default();
        if expr.starred {
            base.star(n, budget)
        } else {
            Ok(base)
        }
    }

    /// Left-fold of one concatenation path during fill: jump-starts from
    /// the longest already-cached prefix, then composes symbol by symbol,
    /// admitting every newly completed prefix under its canonical
    /// single-path key.
    fn fill_path(
        &self,
        cache: &mut ExprCache,
        path: &PathExpr,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        if path.is_empty() {
            return Ok(Relation::identity(self.view.node_count()));
        }
        let syms = &path.0;
        let prefix_key = |k: usize| RegularExpr::path(PathExpr(syms[..k].to_vec()));
        let mut start = 0usize;
        let mut acc: Option<Relation> = None;
        for k in (1..=syms.len()).rev() {
            match cache.map.get(&prefix_key(k)) {
                Some(ExprCacheEntry::Hit(arc)) => {
                    budget.check_size(arc.len())?;
                    acc = Some(arc.as_ref().clone());
                    start = k;
                    break;
                }
                // The left-fold would blow the cap right here.
                Some(ExprCacheEntry::TooLarge(sz)) => return Err(EvalError::TooLarge(*sz)),
                None => {}
            }
        }
        let (mut acc, mut i) = match acc {
            Some(r) => (r, start),
            None => {
                let leaf = self.relation(syms[0]).clone();
                budget.check_size(leaf.len())?;
                cache.admit(prefix_key(1), leaf.clone());
                (leaf, 1)
            }
        };
        while i < syms.len() {
            acc = acc.compose(self.relation(syms[i]), budget)?;
            i += 1;
            cache.admit(prefix_key(i), acc.clone());
        }
        Ok(acc)
    }

    /// Probes the sub-expression cache for a whole expression. The two
    /// outcomes, under the pinned budget rule:
    ///
    /// * `Ok(Some(rel))` — hit: the caller is charged exactly
    ///   [`Budget::check_size`] on the cached cardinality (the check any
    ///   computation of the result would have ended with) and **no wall
    ///   time**;
    /// * `Ok(None)` — miss (or cache disabled): compute as before.
    ///   Negative entries also land here: a probe caller's native
    ///   evaluation strategy is not the fill's kernel path, so a fill
    ///   blow-up does not prove *its* recomputation fails (only
    ///   [`EvalContext::expr_relation`] treats negatives as
    ///   authoritative).
    ///
    /// An `Err(TooLarge)` is the hit's own cardinality check failing —
    /// the caller's cap is below the cached result size, exactly as
    /// finishing the computation would have ended.
    pub fn cached_expr(
        &self,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Option<Arc<Relation>>, EvalError> {
        let Some(cache) = self.expr_cache.get() else {
            return Ok(None);
        };
        match cache.map.get(expr) {
            Some(ExprCacheEntry::Hit(arc)) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                budget.check_size(arc.len())?;
                Ok(Some(Arc::clone(arc)))
            }
            _ => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    /// The relation of a whole expression: a cache hit when possible,
    /// otherwise computed by the sorted-kernel relational path — with
    /// cached concatenation prefixes jump-starting each path's left
    /// fold. This is the `P`-style engine's per-conjunct entry point.
    ///
    /// A negative cache entry whose recorded blow-up exceeds the
    /// caller's cap is authoritative here (`Err(TooLarge)` without
    /// recomputing): this method runs the exact kernel computation the
    /// fill ran, so it would fail at the same check.
    pub fn expr_relation(
        &self,
        expr: &RegularExpr,
        budget: &Budget,
    ) -> Result<Arc<Relation>, EvalError> {
        if let Some(hit) = self.cached_expr(expr, budget)? {
            return Ok(hit);
        }
        if let Some(cache) = self.expr_cache.get() {
            if let Some(ExprCacheEntry::TooLarge(sz)) = cache.map.get(expr) {
                if *sz > budget.max_tuples {
                    return Err(EvalError::TooLarge(*sz));
                }
            }
        }
        let n = self.view.node_count();
        let mut acc: Option<Relation> = None;
        for path in &expr.disjuncts {
            let r = self.read_path_relation(path, budget)?;
            acc = Some(match acc {
                None => r,
                Some(a) => a.union(&r),
            });
        }
        let base = acc.unwrap_or_default();
        let rel = if expr.starred {
            base.star(n, budget)?
        } else {
            base
        };
        Ok(Arc::new(rel))
    }

    /// Read-only variant of [`EvalContext::fill_path`] for cell-time
    /// misses: jump-starts from cached prefixes but never mutates the
    /// cache (cells are pure consumers — the determinism invariant).
    fn read_path_relation(&self, path: &PathExpr, budget: &Budget) -> Result<Relation, EvalError> {
        if path.is_empty() {
            return Ok(Relation::identity(self.view.node_count()));
        }
        let syms = &path.0;
        let mut start = 0usize;
        let mut acc: Option<Relation> = None;
        if let Some(cache) = self.expr_cache.get() {
            for k in (1..=syms.len()).rev() {
                let key = RegularExpr::path(PathExpr(syms[..k].to_vec()));
                match cache.map.get(&key) {
                    Some(ExprCacheEntry::Hit(arc)) => {
                        budget.check_size(arc.len())?;
                        acc = Some(arc.as_ref().clone());
                        start = k;
                        break;
                    }
                    Some(ExprCacheEntry::TooLarge(sz)) if *sz > budget.max_tuples => {
                        return Err(EvalError::TooLarge(*sz));
                    }
                    _ => {}
                }
            }
        }
        let (mut acc, mut i) = match acc {
            Some(r) => (r, start),
            None => (self.relation(syms[0]).clone(), 1),
        };
        while i < syms.len() {
            acc = acc.compose(self.relation(syms[i]), budget)?;
            i += 1;
        }
        Ok(acc)
    }

    /// The exact cardinality of a positively cached expression, if any —
    /// the planner's short-circuit: a cached sub-expression needs no
    /// statistical estimate. Does not touch the hit/miss counters
    /// (planning is warm-up work, not cell evaluation).
    pub fn cached_expr_len(&self, expr: &RegularExpr) -> Option<u64> {
        match self.expr_cache.get()?.map.get(expr)? {
            ExprCacheEntry::Hit(arc) => Some(arc.len() as u64),
            ExprCacheEntry::TooLarge(_) => None,
        }
    }

    /// Contents and hit accounting of the sub-expression cache; `None`
    /// until [`EvalContext::fill_expr_cache`] has run with a nonzero
    /// budget.
    pub fn expr_cache_stats(&self) -> Option<EvalCacheStats> {
        let cache = self.expr_cache.get()?;
        Some(EvalCacheStats {
            budget_mb: cache.budget_mb,
            entries: cache.map.len(),
            tuples: cache.tuples,
            bytes: cache.bytes,
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            rejected: cache.rejected,
            fills: cache.fills,
        })
    }

    /// The tuple cap the cache fill ran under (test hook for the budget
    /// rule).
    #[doc(hidden)]
    pub fn expr_cache_cap(&self) -> Option<usize> {
        self.expr_cache.get().map(|c| c.cap)
    }

    /// The Datalog base program (`node` + one `edge_<p>` per predicate,
    /// interned in predicate order) and the extensional database over it,
    /// built on first use. Per-query programs start from a clone of the
    /// base program — so their `edge_<p>` ids line up with the shared
    /// facts — and evaluate against the borrowed EDB via
    /// [`crate::datalog::semi_naive_over`].
    pub fn edb(&self) -> (&Program, &Database) {
        let (program, db) = self.edb.get_or_init(|| {
            let mut program = Program::new();
            let db = graph_edb(self.view, &mut program);
            (program, db)
        });
        (program, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[4]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    #[test]
    fn relations_are_shared_not_rebuilt() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let sym = Symbol::forward(PredicateId(0));
        let first = ctx.relation(sym) as *const Relation;
        let second = ctx.relation(sym) as *const Relation;
        assert_eq!(first, second, "same OnceLock slot must be returned");
        assert_eq!(ctx.relation(sym).pairs(), &[(0, 1), (1, 2), (2, 0), (3, 1)]);
        assert_eq!(
            ctx.relation(sym.flipped()).pairs(),
            &[(0, 2), (1, 0), (1, 3), (2, 1)]
        );
    }

    #[test]
    fn cardinalities_match_the_graph() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        assert_eq!(ctx.cardinality(0), 4);
        assert_eq!(ctx.cardinality(1), 2);
    }

    #[test]
    fn symbol_stats_count_distinct_endpoints() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        // Predicate 0: edges (0,1),(1,2),(2,0),(3,1) — four distinct
        // sources, three distinct targets {0,1,2}.
        let a = ctx.symbol_stats(Symbol::forward(PredicateId(0)));
        assert_eq!(
            a,
            SymbolStats {
                edges: 4,
                distinct_src: 4,
                distinct_trg: 3
            }
        );
        // The inverse symbol sees the same counts, swapped.
        let a_inv = ctx.symbol_stats(Symbol::forward(PredicateId(0)).flipped());
        assert_eq!(a_inv.distinct_src, 3);
        assert_eq!(a_inv.distinct_trg, 4);
        assert_eq!(a_inv.edges, 4);
        // Predicate 1: (1,3),(2,3) — two sources, one target.
        let b = ctx.symbol_stats(Symbol::forward(PredicateId(1)));
        assert_eq!(
            b,
            SymbolStats {
                edges: 2,
                distinct_src: 2,
                distinct_trg: 1
            }
        );
    }

    #[test]
    fn nfa_cache_returns_the_same_automaton() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let expr = RegularExpr::symbol(Symbol::forward(PredicateId(0)));
        let a = ctx.nfa(&expr);
        let b = ctx.nfa(&expr);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn edb_is_built_once_and_covers_the_graph() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let (program, db) = ctx.edb();
        let node = program.predicate_id("node").expect("node interned");
        let e0 = program.predicate_id("edge_0").expect("edge_0 interned");
        assert_eq!(db.count(node), 4);
        assert_eq!(db.count(e0), 4);
        let (again, _) = ctx.edb();
        assert_eq!(again as *const Program, program as *const Program);
    }

    #[test]
    fn context_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<EvalContext<'_>>();
    }

    fn two_step_expr() -> RegularExpr {
        RegularExpr::path(PathExpr(vec![
            Symbol::forward(PredicateId(0)),
            Symbol::forward(PredicateId(1)),
        ]))
    }

    #[test]
    fn expr_cache_serves_filled_expressions_and_their_prefixes() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let expr = two_step_expr();
        ctx.fill_expr_cache(std::slice::from_ref(&expr), 16, Budget::default);
        let budget = Budget::default();
        let hit = ctx.cached_expr(&expr, &budget).unwrap().expect("hit");
        let direct = Relation::of_expr(&g, &expr, &budget).unwrap();
        assert_eq!(hit.as_ref(), &direct);
        // The length-1 prefix was admitted under its canonical key, which
        // is exactly what `RegularExpr::symbol` builds.
        let prefix = RegularExpr::symbol(Symbol::forward(PredicateId(0)));
        let prefix_hit = ctx.cached_expr(&prefix, &budget).unwrap().expect("hit");
        assert_eq!(
            prefix_hit.as_ref(),
            ctx.relation(Symbol::forward(PredicateId(0)))
        );
        let stats = ctx.expr_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (2, 0));
        // The two admitted entries were built during fill — the probe
        // counters above never saw them, but `fills` did.
        assert_eq!(stats.fills, 2, "{stats:?}");
        assert!(stats.entries >= 2, "{stats:?}");
        assert_eq!(stats.bytes, stats.tuples as usize * 8);
        // A second fill is a no-op: the cache froze at first fill.
        ctx.fill_expr_cache(&[prefix], 1, Budget::default);
        assert_eq!(ctx.expr_cache_stats().unwrap().entries, stats.entries);
    }

    #[test]
    fn cache_hit_charges_only_the_cardinality_check() {
        // The pinned budget rule: a hit is charged Budget::check_size on
        // the cached cardinality and nothing else — in particular no wall
        // time, so an already-expired clock cannot fail a hit.
        let g = graph();
        let ctx = EvalContext::new(&g);
        let expr = two_step_expr();
        ctx.fill_expr_cache(std::slice::from_ref(&expr), 16, Budget::default);
        let len = ctx.cached_expr_len(&expr).expect("cached") as usize;
        assert!(len > 0);
        let expired = Budget::with_limits(Some(std::time::Duration::ZERO), usize::MAX);
        assert!(ctx.cached_expr(&expr, &expired).unwrap().is_some());
        // ... while a tuple cap below the cached cardinality fails the
        // size check, exactly as finishing the computation would have.
        let tight = Budget::with_limits(None, len - 1);
        assert!(matches!(
            ctx.cached_expr(&expr, &tight),
            Err(EvalError::TooLarge(_))
        ));
        let roomy = Budget::with_limits(None, len);
        assert!(ctx.cached_expr(&expr, &roomy).unwrap().is_some());
    }

    #[test]
    fn deterministic_blowups_are_negatively_cached() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        // Fill under a 1-tuple cap: the two-step composition cannot fit,
        // and the failure is deterministic, so it is cached negatively.
        let expr = two_step_expr();
        ctx.fill_expr_cache(std::slice::from_ref(&expr), 16, || {
            Budget::with_limits(None, 1)
        });
        // The kernel path fails fast for a consumer at (or below) the
        // recorded blow-up — recomputing would fail at the same check...
        assert!(matches!(
            ctx.expr_relation(&expr, &Budget::with_limits(None, 1)),
            Err(EvalError::TooLarge(_))
        ));
        // ...while a probe is a plain miss (negative entries bind only
        // the kernel path), and a roomier kernel caller recomputes.
        assert_eq!(
            ctx.cached_expr(&expr, &Budget::with_limits(None, 1))
                .unwrap(),
            None
        );
        assert_eq!(ctx.cached_expr(&expr, &Budget::default()).unwrap(), None);
        let rel = ctx.expr_relation(&expr, &Budget::default()).unwrap();
        assert_eq!(
            rel.as_ref(),
            &Relation::of_expr(&g, &expr, &Budget::default()).unwrap()
        );
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let expr = two_step_expr();
        ctx.fill_expr_cache(std::slice::from_ref(&expr), 0, Budget::default);
        assert!(ctx.expr_cache_stats().is_none());
        assert_eq!(ctx.cached_expr(&expr, &Budget::default()).unwrap(), None);
        // With the cache off, probes keep the counters untouched and
        // expr_relation computes directly.
        let rel = ctx.expr_relation(&expr, &Budget::default()).unwrap();
        assert_eq!(
            rel.as_ref(),
            &Relation::of_expr(&g, &expr, &Budget::default()).unwrap()
        );
    }
}
