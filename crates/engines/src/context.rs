//! The shared, immutable evaluation context.
//!
//! Before this module existed, every engine re-derived its own view of the
//! graph *per query*: the relational engine collected and sorted one edge
//! list per symbol occurrence, the Datalog engine rebuilt the whole EDB
//! (`node(v)`, `edge_<p>(s, t)`) from scratch, and the automaton engines
//! recompiled NFAs for expressions they had already seen. An
//! [`EvalContext`] computes each of these **at most once per graph** and
//! lends them to all four engines — the "one context, many query backends"
//! shape of a server, and the schema-wide precomputation that
//! schema-based query optimisation exploits:
//!
//! * [`EvalContext::relation`] — the sorted, deduplicated binary relation
//!   of a `Σ±` symbol (forward or inverse), built lazily per
//!   `(predicate, direction)` and shared by reference;
//! * [`EvalContext::edb`] — the Datalog extensional database plus the base
//!   program interning `node` and every `edge_<p>`, built lazily once;
//!   per-query programs extend a clone of the (tiny) base program while
//!   borrowing the (large) fact database;
//! * [`EvalContext::nfa`] — a memoized [`compile_nfa`], keyed by the
//!   regular expression;
//! * [`EvalContext::cardinality`] — per-predicate edge counts (an O(1)
//!   read off the CSR), the convenience input for cardinality-driven
//!   planning in harness code;
//! * [`EvalContext::symbol_stats`] — distinct-source/distinct-target
//!   counts per `(predicate, direction)`, the planner's selectivity
//!   input, computed once off the CSR degree arrays and shared.
//!
//! The context is `Sync`: lazy slots are [`OnceLock`]s whose values are
//! pure functions of the graph, and the NFA cache is a mutex around a
//! memo table — so concurrent initialization from the matrix harness's
//! workers is race-free and cannot affect any observable result.

use crate::automaton::{compile_nfa, Nfa};
use crate::datalog::{graph_edb, Database, Program};
use crate::relations::Relation;
use gmark_core::query::{RegularExpr, Symbol};
use gmark_store::GraphView;
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything the four engines would otherwise re-derive from the graph on
/// every query, computed at most once and borrowed by every
/// (engine × query) cell. See the module docs.
///
/// The context is built over a [`GraphView`], so the same engines evaluate
/// either the in-memory CSR [`Graph`](gmark_store::Graph) or the on-disk
/// paged store ([`gmark_store::StoreReader`]) — `EvalContext::new(&graph)`
/// and `EvalContext::new(&reader)` both work.
#[derive(Debug)]
pub struct EvalContext<'g> {
    view: GraphView<'g>,
    /// Lazy forward relation per predicate.
    fwd: Vec<OnceLock<Relation>>,
    /// Lazy inverse relation per predicate.
    bwd: Vec<OnceLock<Relation>>,
    /// Lazy Datalog base program (`node`, `edge_<p>`) and EDB facts.
    edb: OnceLock<(Program, Database)>,
    /// Memoized compiled automata, keyed by expression.
    nfas: Mutex<FxHashMap<RegularExpr, Arc<Nfa>>>,
    /// Lazy per-predicate `(distinct sources, distinct targets)` counts.
    stats: Vec<OnceLock<(usize, usize)>>,
}

/// Statistics of one `Σ±` symbol: how many edges carry its predicate and
/// how many distinct nodes appear on each side (in the symbol's own
/// direction — an inverse symbol sees the forward counts swapped). These
/// are the per-symbol inputs of the cost model in [`crate::planner`]; like
/// the sorted relations they are computed lazily per predicate, shared
/// across engines, and pre-warmable so no matrix cell is ever billed for
/// their construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolStats {
    /// Number of edges labeled with the symbol's predicate.
    pub edges: usize,
    /// Distinct nodes with at least one outgoing such edge (in symbol
    /// direction).
    pub distinct_src: usize,
    /// Distinct nodes with at least one incoming such edge (in symbol
    /// direction).
    pub distinct_trg: usize,
}

impl<'g> EvalContext<'g> {
    /// Wraps a graph view (either `&Graph` or `&StoreReader` coerces).
    /// Cheap: every index is initialized lazily on first use, so a context
    /// built for one triple-store query never pays for the Datalog EDB.
    pub fn new(view: impl Into<GraphView<'g>>) -> EvalContext<'g> {
        let view = view.into();
        let preds = view.predicate_count();
        EvalContext {
            view,
            fwd: (0..preds).map(|_| OnceLock::new()).collect(),
            bwd: (0..preds).map(|_| OnceLock::new()).collect(),
            edb: OnceLock::new(),
            nfas: Mutex::new(FxHashMap::default()),
            stats: (0..preds).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The underlying graph view.
    #[inline]
    pub fn view(&self) -> GraphView<'g> {
        self.view
    }

    /// Number of `pred`-labeled edges (the planner's cardinality input;
    /// an O(1) read off the forward CSR or the store directory).
    #[inline]
    pub fn cardinality(&self, pred: usize) -> usize {
        self.view.edge_count_for(pred)
    }

    /// The sorted binary relation of one `Σ±` symbol, computed on first
    /// use for its `(predicate, direction)` slot and shared afterwards.
    pub fn relation(&self, sym: Symbol) -> &Relation {
        let slot = if sym.inverse {
            &self.bwd[sym.predicate.0]
        } else {
            &self.fwd[sym.predicate.0]
        };
        slot.get_or_init(|| Relation::of_symbol(self.view, sym))
    }

    /// The distinct-endpoint statistics of one `Σ±` symbol, computed on
    /// first use for its predicate (one offsets sweep, no target pages)
    /// and shared by both directions — the inverse symbol returns the same
    /// counts with source and target swapped.
    pub fn symbol_stats(&self, sym: Symbol) -> SymbolStats {
        let p = sym.predicate.0;
        let &(src, trg) = self.stats[p].get_or_init(|| self.view.distinct_endpoints(p));
        let edges = self.view.edge_count_for(p);
        if sym.inverse {
            SymbolStats {
                edges,
                distinct_src: trg,
                distinct_trg: src,
            }
        } else {
            SymbolStats {
                edges,
                distinct_src: src,
                distinct_trg: trg,
            }
        }
    }

    /// The compiled NFA of a regular expression, memoized per context.
    pub fn nfa(&self, expr: &RegularExpr) -> Arc<Nfa> {
        let mut cache = self.nfas.lock().expect("no panics while compiling NFAs");
        if let Some(nfa) = cache.get(expr) {
            return Arc::clone(nfa);
        }
        let nfa = Arc::new(compile_nfa(expr));
        cache.insert(expr.clone(), Arc::clone(&nfa));
        nfa
    }

    /// The Datalog base program (`node` + one `edge_<p>` per predicate,
    /// interned in predicate order) and the extensional database over it,
    /// built on first use. Per-query programs start from a clone of the
    /// base program — so their `edge_<p>` ids line up with the shared
    /// facts — and evaluate against the borrowed EDB via
    /// [`crate::datalog::semi_naive_over`].
    pub fn edb(&self) -> (&Program, &Database) {
        let (program, db) = self.edb.get_or_init(|| {
            let mut program = Program::new();
            let db = graph_edb(self.view, &mut program);
            (program, db)
        });
        (program, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[4]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    #[test]
    fn relations_are_shared_not_rebuilt() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let sym = Symbol::forward(PredicateId(0));
        let first = ctx.relation(sym) as *const Relation;
        let second = ctx.relation(sym) as *const Relation;
        assert_eq!(first, second, "same OnceLock slot must be returned");
        assert_eq!(ctx.relation(sym).pairs(), &[(0, 1), (1, 2), (2, 0), (3, 1)]);
        assert_eq!(
            ctx.relation(sym.flipped()).pairs(),
            &[(0, 2), (1, 0), (1, 3), (2, 1)]
        );
    }

    #[test]
    fn cardinalities_match_the_graph() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        assert_eq!(ctx.cardinality(0), 4);
        assert_eq!(ctx.cardinality(1), 2);
    }

    #[test]
    fn symbol_stats_count_distinct_endpoints() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        // Predicate 0: edges (0,1),(1,2),(2,0),(3,1) — four distinct
        // sources, three distinct targets {0,1,2}.
        let a = ctx.symbol_stats(Symbol::forward(PredicateId(0)));
        assert_eq!(
            a,
            SymbolStats {
                edges: 4,
                distinct_src: 4,
                distinct_trg: 3
            }
        );
        // The inverse symbol sees the same counts, swapped.
        let a_inv = ctx.symbol_stats(Symbol::forward(PredicateId(0)).flipped());
        assert_eq!(a_inv.distinct_src, 3);
        assert_eq!(a_inv.distinct_trg, 4);
        assert_eq!(a_inv.edges, 4);
        // Predicate 1: (1,3),(2,3) — two sources, one target.
        let b = ctx.symbol_stats(Symbol::forward(PredicateId(1)));
        assert_eq!(
            b,
            SymbolStats {
                edges: 2,
                distinct_src: 2,
                distinct_trg: 1
            }
        );
    }

    #[test]
    fn nfa_cache_returns_the_same_automaton() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let expr = RegularExpr::symbol(Symbol::forward(PredicateId(0)));
        let a = ctx.nfa(&expr);
        let b = ctx.nfa(&expr);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn edb_is_built_once_and_covers_the_graph() {
        let g = graph();
        let ctx = EvalContext::new(&g);
        let (program, db) = ctx.edb();
        let node = program.predicate_id("node").expect("node interned");
        let e0 = program.predicate_id("edge_0").expect("edge_0 interned");
        assert_eq!(db.count(node), 4);
        assert_eq!(db.count(e0), 4);
        let (again, _) = ctx.edb();
        assert_eq!(again as *const Program, program as *const Program);
    }

    #[test]
    fn context_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<EvalContext<'_>>();
    }
}
