//! The triple-store engine (`S`-style: a SPARQL 1.1 property-path engine).
//!
//! Each conjunct is treated as a SPARQL property path and evaluated with
//! the product-automaton algorithm over the store's sorted indexes — no
//! per-step intermediate relations are materialized, which is why this
//! architecture overtakes the relational engine on large linear and on
//! quadratic non-recursive workloads (Fig. 12(b)/(c)). Conjuncts are then
//! combined with a greedy *smallest-relation-first* join order (the
//! cardinality-driven ordering triple stores favor), subject to
//! connectivity with the variables already bound.
//!
//! On recursive queries the per-source product BFS touches a large part of
//! `V × Q` per source; with the measurement budgets of Section 7 this
//! engine finishes only the small instances — Table 4's `S` row.

use crate::context::EvalContext;
use crate::joiner::{join_all, project, ConjunctPairs};
use crate::{eval_rpq, unpack, Answers, Budget, Engine, EvalError};
use gmark_core::query::Query;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TripleStoreEngine;

impl Engine for TripleStoreEngine {
    fn name(&self) -> &'static str {
        "S/triplestore"
    }

    fn evaluate_ctx(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        let mut tuples = Vec::new();
        for rule in &query.rules {
            // Property-path evaluation per conjunct, with the compiled
            // automaton memoized in the shared context.
            let mut materialized: Vec<ConjunctPairs> = Vec::with_capacity(rule.body.len());
            for c in &rule.body {
                let nfa = ctx.nfa(&c.expr);
                let packed = eval_rpq(ctx.graph(), &nfa, budget)?;
                materialized.push(ConjunctPairs {
                    src: c.src,
                    trg: c.trg,
                    pairs: packed.into_iter().map(unpack).collect(),
                });
            }
            // Greedy order: repeatedly pick the smallest not-yet-joined
            // conjunct that shares a variable with the bound set (or the
            // globally smallest when none connects).
            let ordered = greedy_order(materialized)?;
            let table = join_all(ordered, budget)?;
            tuples.extend(project(&table, rule)?);
            budget.check_size(tuples.len())?;
        }
        Ok(Answers::new(query.arity(), tuples))
    }
}

fn greedy_order(mut conjuncts: Vec<ConjunctPairs>) -> Result<Vec<ConjunctPairs>, EvalError> {
    let mut ordered = Vec::with_capacity(conjuncts.len());
    let mut bound: Vec<gmark_core::query::Var> = Vec::new();
    while !conjuncts.is_empty() {
        let idx = conjuncts
            .iter()
            .enumerate()
            .filter(|(_, c)| bound.contains(&c.src) || bound.contains(&c.trg))
            .min_by_key(|(_, c)| c.pairs.len())
            .map(|(i, _)| i)
            .or_else(|| {
                conjuncts
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| c.pairs.len())
                    .map(|(i, _)| i)
            })
            .ok_or_else(|| {
                // Unreachable while the loop guard holds; surfaced as a
                // typed error so a broken invariant fails one cell, not
                // the whole matrix.
                EvalError::Internal("conjunct ordering found no candidate".to_owned())
            })?;
        let c = conjuncts.swap_remove(idx);
        if !bound.contains(&c.src) {
            bound.push(c.src);
        }
        if !bound.contains(&c.trg) {
            bound.push(c.trg);
        }
        ordered.push(c);
    }
    Ok(ordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalEngine;
    use gmark_core::query::{Conjunct, PathExpr, RegularExpr, Rule, Symbol, Var};
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[5]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1), (4, 2)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3), (0, 4)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn chain_query(exprs: Vec<RegularExpr>) -> Query {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    }

    #[test]
    fn agrees_with_relational_on_chains() {
        let cases = vec![
            chain_query(vec![RegularExpr::symbol(sym(0))]),
            chain_query(vec![
                RegularExpr::symbol(sym(0)),
                RegularExpr::symbol(sym(1)),
            ]),
            chain_query(vec![
                RegularExpr::union(vec![PathExpr(vec![sym(0)]), PathExpr(vec![sym(1)])]),
                RegularExpr::symbol(sym(0).flipped()),
            ]),
            chain_query(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]),
            chain_query(vec![
                RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1).flipped()])]),
                RegularExpr::symbol(sym(1)),
            ]),
        ];
        for q in cases {
            let a = TripleStoreEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            let b = RelationalEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            assert_eq!(a, b, "mismatch on {q:?}");
        }
    }

    #[test]
    fn greedy_order_puts_smallest_connected_first() {
        let c_big = ConjunctPairs {
            src: Var(0),
            trg: Var(1),
            pairs: (0..100).map(|i| (i, i)).collect(),
        };
        let c_small = ConjunctPairs {
            src: Var(1),
            trg: Var(2),
            pairs: vec![(0, 0)],
        };
        let c_mid = ConjunctPairs {
            src: Var(2),
            trg: Var(3),
            pairs: (0..10).map(|i| (i, i)).collect(),
        };
        let ordered = greedy_order(vec![c_big, c_small, c_mid]).unwrap();
        assert_eq!(ordered[0].pairs.len(), 1, "smallest seeds the join");
        // Next must connect to Var(1)/Var(2): both do; mid (10) < big (100).
        assert_eq!(ordered[1].pairs.len(), 10);
        assert_eq!(ordered[2].pairs.len(), 100);
    }

    #[test]
    fn boolean_and_union_queries() {
        let q = Query::new(vec![
            Rule {
                head: vec![],
                body: vec![Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(1),
                }],
            },
            Rule {
                head: vec![],
                body: vec![Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                }],
            },
        ])
        .unwrap();
        let a = TripleStoreEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert!(a.non_empty());
    }

    #[test]
    fn star_shaped_query() {
        // (?c, a, ?x), (?c, b, ?y): center variable joins both.
        let q = Query::single(Rule {
            head: vec![Var(1), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(2),
                },
            ],
        })
        .unwrap();
        let a = TripleStoreEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        let b = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert_eq!(a, b);
        // Node 0: a→1, b→4 contributes (1,4); node 1: a→2, b→3 → (2,3);
        // node 2: a→0, b→3 → (0,3).
        assert_eq!(a.tuples, vec![vec![0, 3], vec![1, 4], vec![2, 3]]);
    }
}
