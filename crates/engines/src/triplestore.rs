//! The triple-store engine (`S`-style: a SPARQL 1.1 property-path engine).
//!
//! Each conjunct is treated as a SPARQL property path and evaluated with
//! the product-automaton algorithm over the store's sorted indexes — no
//! per-step intermediate relations are materialized, which is why this
//! architecture overtakes the relational engine on large linear and on
//! quadratic non-recursive workloads (Fig. 12(b)/(c)). Conjuncts are then
//! combined with a greedy *smallest-relation-first* join order (the
//! cardinality-driven ordering triple stores favor), subject to
//! connectivity with the variables already bound.
//!
//! On recursive queries the per-source product BFS touches a large part of
//! `V × Q` per source; with the measurement budgets of Section 7 this
//! engine finishes only the small instances — Table 4's `S` row.

use crate::context::EvalContext;
use crate::joiner::{join_all, project, ConjunctPairs};
use crate::relations::Relation;
use crate::{eval_rpq, unpack, Answers, Budget, Engine, EvalError, QueryPlan};
use gmark_core::query::Query;
use std::sync::Arc;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TripleStoreEngine;

impl Engine for TripleStoreEngine {
    fn name(&self) -> &'static str {
        "S/triplestore"
    }

    fn evaluate_ctx(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        self.evaluate_planned(ctx, query, None, budget)
    }

    fn evaluate_planned(
        &self,
        ctx: &EvalContext<'_>,
        query: &Query,
        plan: Option<&QueryPlan>,
        budget: &Budget,
    ) -> Result<Answers, EvalError> {
        let mut tuples = Vec::new();
        for (ri, rule) in query.rules.iter().enumerate() {
            // Property-path evaluation per conjunct, with the compiled
            // automaton memoized in the shared context.
            let mut materialized: Vec<ConjunctPairs> = Vec::with_capacity(rule.body.len());
            for c in &rule.body {
                // A sub-expression cache hit replaces the whole product-BFS
                // for this conjunct (charged its cardinality check only);
                // on a miss the property-path algorithm runs as before.
                let pairs = match ctx.cached_expr(&c.expr, budget)? {
                    Some(rel) => rel,
                    None => {
                        let nfa = ctx.nfa(&c.expr);
                        let packed = eval_rpq(ctx.view(), &nfa, budget)?;
                        // eval_rpq yields packed pairs in ascending order,
                        // so this is a verification pass, not a sort.
                        Arc::new(Relation::from_pairs(
                            packed.into_iter().map(unpack).collect(),
                        ))
                    }
                };
                materialized.push(ConjunctPairs {
                    src: c.src,
                    trg: c.trg,
                    pairs,
                });
            }
            // Join order: the planner's estimate-driven order when a plan
            // is given, the legacy greedy smallest-materialized-first
            // order otherwise.
            let ordered = match plan.and_then(|p| p.rule_order(ri, rule.body.len())) {
                Some(order) => {
                    let mut slots: Vec<Option<ConjunctPairs>> =
                        materialized.into_iter().map(Some).collect();
                    order
                        .into_iter()
                        .map(|(ci, _)| {
                            slots[ci].take().ok_or_else(|| {
                                EvalError::Internal("plan order revisited a conjunct".to_owned())
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
                None => greedy_order(materialized)?,
            };
            let table = join_all(ordered, budget)?;
            tuples.extend(project(&table, rule)?);
            budget.check_size(tuples.len())?;
        }
        Ok(Answers::new(query.arity(), tuples))
    }
}

/// Greedy smallest-relation-first join order: repeatedly pick the
/// smallest not-yet-joined conjunct that shares a variable with the bound
/// set. When no remaining conjunct connects (the body has several
/// variable-disjoint components), the next component is seeded by the
/// **globally smallest remaining conjunct** — never by declaration
/// position — and every size tie breaks toward the earliest-declared
/// conjunct, so the order is a deterministic function of the
/// (sizes, variables) input alone.
fn greedy_order(conjuncts: Vec<ConjunctPairs>) -> Result<Vec<ConjunctPairs>, EvalError> {
    let n = conjuncts.len();
    let mut slots: Vec<Option<ConjunctPairs>> = conjuncts.into_iter().map(Some).collect();
    let mut ordered = Vec::with_capacity(n);
    let mut bound: Vec<gmark_core::query::Var> = Vec::new();
    for _ in 0..n {
        let remaining = || {
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| Some((i, s.as_ref()?)))
        };
        let idx = remaining()
            .filter(|(_, c)| bound.contains(&c.src) || bound.contains(&c.trg))
            .min_by_key(|&(i, c)| (c.pairs.len(), i))
            .or_else(|| remaining().min_by_key(|&(i, c)| (c.pairs.len(), i)))
            .map(|(i, _)| i)
            .ok_or_else(|| {
                // Unreachable while the loop bound holds; surfaced as a
                // typed error so a broken invariant fails one cell, not
                // the whole matrix.
                EvalError::Internal("conjunct ordering found no candidate".to_owned())
            })?;
        let c = slots[idx]
            .take()
            .ok_or_else(|| EvalError::Internal("conjunct slot taken twice".to_owned()))?;
        if !bound.contains(&c.src) {
            bound.push(c.src);
        }
        if !bound.contains(&c.trg) {
            bound.push(c.trg);
        }
        ordered.push(c);
    }
    Ok(ordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalEngine;
    use gmark_core::query::{Conjunct, PathExpr, RegularExpr, Rule, Symbol, Var};
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    /// An `n`-pair diagonal relation (test sizes for ordering checks).
    fn diag(n: u32) -> Arc<Relation> {
        Arc::new(Relation::from_pairs((0..n).map(|i| (i, i)).collect()))
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[5]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1), (4, 2)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3), (0, 4)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn chain_query(exprs: Vec<RegularExpr>) -> Query {
        let n = exprs.len() as u32;
        Query::single(Rule {
            head: vec![Var(0), Var(n)],
            body: exprs
                .into_iter()
                .enumerate()
                .map(|(i, expr)| Conjunct {
                    src: Var(i as u32),
                    expr,
                    trg: Var(i as u32 + 1),
                })
                .collect(),
        })
        .unwrap()
    }

    #[test]
    fn agrees_with_relational_on_chains() {
        let cases = vec![
            chain_query(vec![RegularExpr::symbol(sym(0))]),
            chain_query(vec![
                RegularExpr::symbol(sym(0)),
                RegularExpr::symbol(sym(1)),
            ]),
            chain_query(vec![
                RegularExpr::union(vec![PathExpr(vec![sym(0)]), PathExpr(vec![sym(1)])]),
                RegularExpr::symbol(sym(0).flipped()),
            ]),
            chain_query(vec![RegularExpr::star(vec![PathExpr(vec![sym(0)])])]),
            chain_query(vec![
                RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1).flipped()])]),
                RegularExpr::symbol(sym(1)),
            ]),
        ];
        for q in cases {
            let a = TripleStoreEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            let b = RelationalEngine
                .evaluate(&graph(), &q, &Budget::default())
                .unwrap();
            assert_eq!(a, b, "mismatch on {q:?}");
        }
    }

    #[test]
    fn greedy_order_puts_smallest_connected_first() {
        let c_big = ConjunctPairs {
            src: Var(0),
            trg: Var(1),
            pairs: diag(100),
        };
        let c_small = ConjunctPairs {
            src: Var(1),
            trg: Var(2),
            pairs: diag(1),
        };
        let c_mid = ConjunctPairs {
            src: Var(2),
            trg: Var(3),
            pairs: diag(10),
        };
        let ordered = greedy_order(vec![c_big, c_small, c_mid]).unwrap();
        assert_eq!(ordered[0].pairs.len(), 1, "smallest seeds the join");
        // Next must connect to Var(1)/Var(2): both do; mid (10) < big (100).
        assert_eq!(ordered[1].pairs.len(), 10);
        assert_eq!(ordered[2].pairs.len(), 100);
    }

    #[test]
    fn greedy_order_handles_disconnected_groups_smallest_first() {
        // Two variable-disjoint components: {x0–x1–x2} and {x10–x11}.
        // After the first component's seed (size 1) pulls in its size-50
        // neighbor, nothing connects — the second component must be
        // seeded by the globally smallest remaining conjunct (size 5),
        // not whichever happens to sit first in the input.
        let a_big = ConjunctPairs {
            src: Var(10),
            trg: Var(11),
            pairs: diag(20),
        };
        let a_small = ConjunctPairs {
            src: Var(11),
            trg: Var(12),
            pairs: diag(5),
        };
        let b_seed = ConjunctPairs {
            src: Var(0),
            trg: Var(1),
            pairs: diag(1),
        };
        let b_next = ConjunctPairs {
            src: Var(1),
            trg: Var(2),
            pairs: diag(50),
        };
        let ordered = greedy_order(vec![a_big, a_small, b_seed, b_next]).unwrap();
        let sizes: Vec<usize> = ordered.iter().map(|c| c.pairs.len()).collect();
        // Component 1: seed (1) then its only neighbor (50). Component 2:
        // smallest remaining (5), then its connected neighbor (20).
        assert_eq!(sizes, vec![1, 50, 5, 20]);
    }

    #[test]
    fn greedy_order_breaks_ties_by_declaration_index() {
        // Three disconnected equal-size conjuncts: the order must be
        // exactly the declaration order (earliest index wins each tie),
        // independent of any removal bookkeeping.
        let mk = |v: u32| ConjunctPairs {
            src: Var(v),
            trg: Var(v + 1),
            pairs: diag(2),
        };
        let ordered = greedy_order(vec![mk(0), mk(10), mk(20)]).unwrap();
        let srcs: Vec<Var> = ordered.iter().map(|c| c.src).collect();
        assert_eq!(srcs, vec![Var(0), Var(10), Var(20)]);
    }

    #[test]
    fn planned_order_matches_greedy_answers() {
        // A plan only changes the join order, never the answers.
        let q = chain_query(vec![
            RegularExpr::symbol(sym(0)),
            RegularExpr::symbol(sym(1)),
        ]);
        let g = graph();
        let ctx = EvalContext::new(&g);
        let plan = crate::planner::plan_query(&ctx, None, &q);
        let budget = Budget::default();
        let planned = TripleStoreEngine
            .evaluate_planned(&ctx, &q, Some(&plan), &budget)
            .unwrap();
        let unplanned = TripleStoreEngine.evaluate_ctx(&ctx, &q, &budget).unwrap();
        assert_eq!(planned, unplanned);
    }

    #[test]
    fn boolean_and_union_queries() {
        let q = Query::new(vec![
            Rule {
                head: vec![],
                body: vec![Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(1),
                }],
            },
            Rule {
                head: vec![],
                body: vec![Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                }],
            },
        ])
        .unwrap();
        let a = TripleStoreEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert!(a.non_empty());
    }

    #[test]
    fn star_shaped_query() {
        // (?c, a, ?x), (?c, b, ?y): center variable joins both.
        let q = Query::single(Rule {
            head: vec![Var(1), Var(2)],
            body: vec![
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(0)),
                    trg: Var(1),
                },
                Conjunct {
                    src: Var(0),
                    expr: RegularExpr::symbol(sym(1)),
                    trg: Var(2),
                },
            ],
        })
        .unwrap();
        let a = TripleStoreEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        let b = RelationalEngine
            .evaluate(&graph(), &q, &Budget::default())
            .unwrap();
        assert_eq!(a, b);
        // Node 0: a→1, b→4 contributes (1,4); node 1: a→2, b→3 → (2,3);
        // node 2: a→0, b→3 → (0,3).
        assert_eq!(a.tuples, vec![vec![0, 3], vec![1, 4], vec![2, 3]]);
    }
}
