//! Regular-expression compilation and product-graph RPQ evaluation.
//!
//! gMark's regular expressions are in outermost-star normal form
//! (`(P1 + … + Pk)` or `(P1 + … + Pk)*`, Section 3.3), so Thompson
//! construction degenerates to a simple ε-free shape:
//!
//! * non-starred: a start state, an accept state, and one chain of fresh
//!   states per disjunct path (an ε disjunct marks the start accepting);
//! * starred: a single state that is both start and accept, with every
//!   disjunct chain looping back into it — which is exactly
//!   `(P1 + … + Pk)*` including the empty word.
//!
//! [`eval_rpq`] evaluates a compiled NFA over the graph by BFS on the
//! product `G × NFA` from every source node — the textbook RPQ algorithm
//! (`O(|V| · |E| · |Q|)`) that SPARQL property-path engines implement.

use crate::{pack, unpack, Budget, EvalError};
use gmark_core::query::{RegularExpr, Symbol};
use gmark_store::{GraphView, NodeId};
use rustc_hash::FxHashSet;

/// An ε-free NFA over `Σ±`.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[q]` = outgoing `(symbol, target state)` moves.
    pub transitions: Vec<Vec<(Symbol, u32)>>,
    /// The unique start state.
    pub start: u32,
    /// Accepting-state flags.
    pub accepting: Vec<bool>,
}

impl Nfa {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the automaton has no states (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Whether the empty word is accepted (start state accepting).
    pub fn accepts_epsilon(&self) -> bool {
        self.accepting[self.start as usize]
    }
}

/// Compiles an outermost-star regular expression into an ε-free NFA.
pub fn compile_nfa(expr: &RegularExpr) -> Nfa {
    if expr.starred {
        // One looping state.
        let mut transitions: Vec<Vec<(Symbol, u32)>> = vec![Vec::new()];
        let mut accepting = vec![true];
        for path in &expr.disjuncts {
            if path.is_empty() {
                continue; // ε already accepted
            }
            let mut at = 0u32;
            for (i, &sym) in path.0.iter().enumerate() {
                let next = if i + 1 == path.len() {
                    0
                } else {
                    transitions.push(Vec::new());
                    accepting.push(false);
                    (transitions.len() - 1) as u32
                };
                transitions[at as usize].push((sym, next));
                at = next;
            }
        }
        Nfa {
            transitions,
            start: 0,
            accepting,
        }
    } else {
        // States 0 = start, 1 = accept.
        let mut transitions: Vec<Vec<(Symbol, u32)>> = vec![Vec::new(), Vec::new()];
        let mut accepting = vec![false, true];
        for path in &expr.disjuncts {
            if path.is_empty() {
                accepting[0] = true;
                continue;
            }
            let mut at = 0u32;
            for (i, &sym) in path.0.iter().enumerate() {
                let next = if i + 1 == path.len() {
                    1
                } else {
                    transitions.push(Vec::new());
                    accepting.push(false);
                    (transitions.len() - 1) as u32
                };
                transitions[at as usize].push((sym, next));
                at = next;
            }
        }
        Nfa {
            transitions,
            start: 0,
            accepting,
        }
    }
}

/// Evaluates the binary RPQ `{(u, v) | u ⟶_L v}` for the NFA's language
/// `L`, returning sorted distinct pairs packed as `(u << 32) | v`.
/// `graph` accepts either `&Graph` or `&StoreReader` (anything that
/// coerces into a [`GraphView`]).
pub fn eval_rpq<'g>(
    graph: impl Into<GraphView<'g>>,
    nfa: &Nfa,
    budget: &Budget,
) -> Result<Vec<u64>, EvalError> {
    let graph = graph.into();
    let n = graph.node_count() as usize;
    let states = nfa.len();
    let mut out: Vec<u64> = Vec::new();

    // Zero-length acceptance contributes the full diagonal.
    if nfa.accepts_epsilon() {
        budget.check_size(n)?;
        out.reserve(n);
        for v in 0..n as NodeId {
            out.push(pack(v, v));
        }
    }

    // Per-source BFS over the product graph. `seen` is reused across
    // sources with a generation stamp to avoid reallocation.
    let mut seen = vec![u32::MAX; n * states];
    let mut queue: Vec<(NodeId, u32)> = Vec::new();
    for src in 0..n as NodeId {
        if src % 1024 == 0 {
            budget.check_time()?;
        }
        // Skip sources that cannot make a first move. `degree` reads only
        // offset words — on the paged variant no target page is fetched.
        let can_move = nfa.transitions[nfa.start as usize]
            .iter()
            .any(|&(sym, _)| graph.degree(sym.predicate.0, src, sym.inverse) > 0);
        if !can_move {
            continue;
        }
        queue.clear();
        queue.push((src, nfa.start));
        seen[src as usize * states + nfa.start as usize] = src;
        let mut qi = 0;
        while qi < queue.len() {
            let (v, q) = queue[qi];
            qi += 1;
            for &(sym, q2) in &nfa.transitions[q as usize] {
                for &w in &graph.neighbors(sym.predicate.0, v, sym.inverse) {
                    let slot = w as usize * states + q2 as usize;
                    if seen[slot] != src {
                        seen[slot] = src;
                        if nfa.accepting[q2 as usize] && !(nfa.accepts_epsilon() && w == src) {
                            out.push(pack(src, w));
                        }
                        queue.push((w, q2));
                    }
                }
            }
            if queue.len() > n * states {
                // Defensive: cannot happen (each product state enqueued
                // once), but keep the budget honest on huge graphs.
                budget.check_size(queue.len())?;
            }
        }
        budget.check_size(out.len())?;
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Convenience: evaluates and unpacks.
pub fn eval_rpq_pairs<'g>(
    graph: impl Into<GraphView<'g>>,
    expr: &RegularExpr,
    budget: &Budget,
) -> Result<Vec<(NodeId, NodeId)>, EvalError> {
    let nfa = compile_nfa(expr);
    Ok(eval_rpq(graph, &nfa, budget)?
        .into_iter()
        .map(unpack)
        .collect())
}

/// Seed-driven variant: computes `{(u, v) | u ∈ seeds, u ⟶_L v}` only for
/// the given sources (the navigational engines' primitive).
pub fn eval_rpq_from<'g>(
    graph: impl Into<GraphView<'g>>,
    nfa: &Nfa,
    seeds: &[NodeId],
    budget: &Budget,
) -> Result<Vec<u64>, EvalError> {
    let graph = graph.into();
    let mut out: Vec<u64> = Vec::new();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut queue: Vec<(NodeId, u32)> = Vec::new();
    for (si, &src) in seeds.iter().enumerate() {
        if si % 256 == 0 {
            budget.check_time()?;
        }
        if nfa.accepts_epsilon() {
            out.push(pack(src, src));
        }
        seen.clear();
        queue.clear();
        queue.push((src, nfa.start));
        seen.insert(pack(src, nfa.start));
        let mut qi = 0;
        while qi < queue.len() {
            let (v, q) = queue[qi];
            qi += 1;
            for &(sym, q2) in &nfa.transitions[q as usize] {
                for &w in &graph.neighbors(sym.predicate.0, v, sym.inverse) {
                    if seen.insert(pack(w, q2)) {
                        if nfa.accepting[q2 as usize] && !(nfa.accepts_epsilon() && w == src) {
                            out.push(pack(src, w));
                        }
                        queue.push((w, q2));
                    }
                }
            }
        }
        budget.check_size(out.len())?;
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmark_core::query::PathExpr;
    use gmark_core::schema::PredicateId;
    use gmark_store::{EdgeSink, Graph, GraphBuilder, TypePartition};

    fn sym(i: usize) -> Symbol {
        Symbol::forward(PredicateId(i))
    }

    /// A small two-label graph:
    /// a-edges: 0→1, 1→2, 2→0 (a 3-cycle), 3→1; b-edges: 1→3, 2→3.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new(TypePartition::from_counts(&[4]), 2);
        for (s, t) in [(0, 1), (1, 2), (2, 0), (3, 1)] {
            b.edge(s, 0, t);
        }
        for (s, t) in [(1, 3), (2, 3)] {
            b.edge(s, 1, t);
        }
        b.build()
    }

    fn pairs(expr: &RegularExpr) -> Vec<(NodeId, NodeId)> {
        eval_rpq_pairs(&graph(), expr, &Budget::default()).unwrap()
    }

    #[test]
    fn single_symbol() {
        let got = pairs(&RegularExpr::symbol(sym(0)));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 0), (3, 1)]);
    }

    #[test]
    fn inverse_symbol() {
        let got = pairs(&RegularExpr::symbol(sym(0).flipped()));
        assert_eq!(got, vec![(0, 2), (1, 0), (1, 3), (2, 1)]);
    }

    #[test]
    fn concatenation() {
        // a·b: 0→1→3, 1→2→3, 3→1... 1-b->3; so (0,3), (1,3), (3,3)? 3-a->1-b->3.
        let got = pairs(&RegularExpr::path(PathExpr(vec![sym(0), sym(1)])));
        assert_eq!(got, vec![(0, 3), (1, 3), (3, 3)]);
    }

    #[test]
    fn disjunction() {
        let got = pairs(&RegularExpr::union(vec![
            PathExpr(vec![sym(0)]),
            PathExpr(vec![sym(1)]),
        ]));
        assert_eq!(got, vec![(0, 1), (1, 2), (1, 3), (2, 0), (2, 3), (3, 1)]);
    }

    #[test]
    fn epsilon_disjunct_adds_diagonal() {
        let got = pairs(&RegularExpr::union(vec![
            PathExpr::epsilon(),
            PathExpr(vec![sym(1)]),
        ]));
        let mut expected = vec![(0, 0), (1, 1), (2, 2), (3, 3), (1, 3), (2, 3)];
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn star_of_cycle_reaches_everything_in_component() {
        // (a)*: within the cycle {0,1,2} everything reaches everything;
        // 3 reaches {3,1,2,0}; plus the ε diagonal.
        let got = pairs(&RegularExpr::star(vec![PathExpr(vec![sym(0)])]));
        let mut expected = Vec::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                expected.push((u, v));
            }
        }
        expected.extend([(3, 3), (3, 1), (3, 2), (3, 0)]);
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(got, expected);
    }

    #[test]
    fn star_of_multi_symbol_path() {
        // (a·b)*: ε ∪ {0→3, 1→3, 3→3} ∪ longer iterations: from 3, a·b
        // loops 3→1→3, so (3,3) again; from 0: 0→3 then 3→3.
        let got = pairs(&RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1)])]));
        let mut expected = vec![(0, 0), (1, 1), (2, 2), (3, 3), (0, 3), (1, 3), (3, 3)];
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(got, expected);
    }

    #[test]
    fn mixed_direction_star() {
        // (b·b⁻)*: 1 and 2 both reach node 3 and back, so {1,2} are mutually
        // reachable (plus the diagonal).
        let got = pairs(&RegularExpr::star(vec![PathExpr(vec![
            sym(1),
            sym(1).flipped(),
        ])]));
        let mut expected = vec![(0, 0), (1, 1), (2, 2), (3, 3), (1, 2), (2, 1)];
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn seed_driven_matches_full_eval() {
        let expr = RegularExpr::star(vec![PathExpr(vec![sym(0)])]);
        let nfa = compile_nfa(&expr);
        let g = graph();
        let full = eval_rpq(&g, &nfa, &Budget::default()).unwrap();
        let seeded = eval_rpq_from(&g, &nfa, &[0, 1, 2, 3], &Budget::default()).unwrap();
        assert_eq!(full, seeded);
        let only3 = eval_rpq_from(&g, &nfa, &[3], &Budget::default()).unwrap();
        assert!(only3.iter().all(|&p| unpack(p).0 == 3));
        assert_eq!(only3.len(), 4);
    }

    #[test]
    fn budget_too_large_aborts() {
        let expr = RegularExpr::star(vec![PathExpr(vec![sym(0)])]);
        let budget = Budget {
            max_tuples: 3,
            ..Budget::default()
        };
        let err = eval_rpq_pairs(&graph(), &expr, &budget).unwrap_err();
        assert!(matches!(err, EvalError::TooLarge(_)));
    }

    #[test]
    fn nfa_shapes() {
        let starless = compile_nfa(&RegularExpr::union(vec![PathExpr(vec![sym(0), sym(1)])]));
        assert_eq!(starless.len(), 3); // start, accept, one intermediate
        assert!(!starless.accepts_epsilon());
        let starred = compile_nfa(&RegularExpr::star(vec![PathExpr(vec![sym(0), sym(1)])]));
        assert_eq!(starred.len(), 2); // loop state + one intermediate
        assert!(starred.accepts_epsilon());
        let eps = compile_nfa(&RegularExpr::union(vec![PathExpr::epsilon()]));
        assert!(eps.accepts_epsilon());
    }
}
